module R = Resilience

type config = {
  capacity : int;
  default_fuel : int;
  max_line : int;
  retry : R.Retry.policy;
  breaker : R.Breaker.config;
  seed : int;
}

let default_config =
  { capacity = 16;
    default_fuel = 64;
    max_line = 65536;
    retry = R.Retry.default;
    breaker = R.Breaker.default_config;
    seed = 20021130 }

type summary = {
  admitted : int;
  shed : int;
  completed : int;
  errors : int;
  deadlined : int;
  quarantined : int;
  malformed : int;
  stats_served : int;
  batches : int;
  vt : int;
  drained : bool;
  latencies : int list;
  report : R.Run_report.t;
  store : Store.Disk.stats option;
      (** this run's delta against the ambient store, when one is
          installed *)
  store_degraded : int;
      (** requests that hit store corruption or a failed store write
          (and degraded to recompute) *)
}

let accounted s =
  s.admitted = s.completed + s.errors + s.deadlined + s.quarantined

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0
  | sorted ->
      let n = List.length sorted in
      let rank = max 1 (((p * n) + 99) / 100) in
      List.nth sorted (min (n - 1) (rank - 1))

let summary_to_json s =
  (* the store fields only appear when a store is installed, so runs
     without one render byte-identically to the pre-store format *)
  let store_fields =
    match s.store with
    | None -> ""
    | Some st ->
        Printf.sprintf ", \"store\": %s, \"store_degraded\": %d"
          (Store.Disk.stats_to_json st) s.store_degraded
  in
  Printf.sprintf
    "{\"status\": \"summary\", \"admitted\": %d, \"shed\": %d, \"completed\": \
     %d, \"errors\": %d, \"deadline\": %d, \"quarantined\": %d, \"malformed\": \
     %d, \"stats\": %d, \"batches\": %d, \"vt\": %d, \"drained\": %b, \
     \"accounted\": %b, \"latency_p50\": %d, \"latency_p99\": %d%s, \
     \"report\": %s}"
    s.admitted s.shed s.completed s.errors s.deadlined s.quarantined
    s.malformed s.stats_served s.batches s.vt s.drained (accounted s)
    (percentile 50 s.latencies) (percentile 99 s.latencies) store_fields
    (R.Run_report.to_json s.report)

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>serve: %d admitted (%d completed, %d errors, %d deadline, %d \
     quarantined), %d shed, %d malformed, %d stats@,%d batch%s over %d virtual \
     time units; latency p50 %d, p99 %d@,drained %b, accounted %b"
    s.admitted s.completed s.errors s.deadlined s.quarantined s.shed
    s.malformed s.stats_served s.batches
    (if s.batches = 1 then "" else "es")
    s.vt
    (percentile 50 s.latencies) (percentile 99 s.latencies)
    s.drained (accounted s);
  (match s.store with
  | None -> ()
  | Some st ->
      Format.fprintf ppf
        "@,store: %d hits, %d misses, %d corrupt, %d repaired, %d writes (%d \
         failed), %d request%s degraded"
        st.Store.Disk.hits st.Store.Disk.misses st.Store.Disk.corrupt
        st.Store.Disk.repaired st.Store.Disk.writes
        st.Store.Disk.write_failures s.store_degraded
        (if s.store_degraded = 1 then "" else "s"));
  Format.fprintf ppf "@]"

(* ---- metrics ------------------------------------------------------ *)

let m_admitted = Obs.Metrics.counter "serve.admitted"
let m_shed = Obs.Metrics.counter "serve.shed"
let m_completed = Obs.Metrics.counter "serve.completed"
let m_quarantined = Obs.Metrics.counter "serve.quarantined"
let m_malformed = Obs.Metrics.counter "serve.malformed"
let m_batches = Obs.Metrics.counter "serve.batches"
let m_latency = Obs.Metrics.histogram "serve.latency"

(* ---- the loop ----------------------------------------------------- *)

type pending = {
  p_id : string;
  p_work : Protocol.work;
  p_fuel : int;
  p_arrived : int;
}

let run ?(config = default_config) ~emit source =
  Obs.Span.with_span ~cat:"serve" "serve" @@ fun () ->
  let queue : pending Admission.t = Admission.create ~capacity:config.capacity in
  let store_at_start =
    Option.map Store.Disk.stats (Store.Handle.get ())
  in
  let store_degraded = ref 0 in
  let vt = ref 0 in
  let line_no = ref 0 in
  let completed = ref 0 in
  let errors = ref 0 in
  let deadlined = ref 0 in
  let quarantined = ref 0 in
  let malformed = ref 0 in
  let stats_served = ref 0 in
  let batches = ref 0 in
  let rev_latencies = ref [] in
  let waited = ref 0 in
  let rev_report_items = ref [] in
  let breakers : (string, R.Breaker.t) Hashtbl.t = Hashtbl.create 7 in
  let rev_breakers = ref [] in
  let breaker_of cls =
    match Hashtbl.find_opt breakers cls with
    | Some b -> b
    | None ->
        let b = R.Breaker.create ~config:config.breaker ~resource:cls () in
        Hashtbl.add breakers cls b;
        rev_breakers := b :: !rev_breakers;
        b
  in
  let respond (r : Protocol.response) =
    (match r.Protocol.status with
     | Protocol.Ok_ -> incr completed
     | Protocol.Error_ -> incr errors
     | Protocol.Deadline -> incr deadlined
     | Protocol.Quarantined -> incr quarantined
     | Protocol.Overloaded -> ());
    emit (Protocol.render r)
  in
  let report_item id outcome =
    rev_report_items :=
      { R.Run_report.id; outcome; from_checkpoint = false }
      :: !rev_report_items
  in
  (* One batch: the supervision replay of everything currently queued.
     Mirrors Resilience.Supervisor: speculate first attempts on the
     pool (at every -j, skipped under an active injector), then replay
     sequentially in admission order, owning the clock, the breakers
     and the response stream. *)
  let invoke_handler (p : pending) ~attempt =
    Obs.Span.with_span ~cat:"serve"
      ~args:
        [ ("id", p.p_id); ("class", Protocol.work_class p.p_work);
          ("attempt", string_of_int attempt) ]
      ("request:" ^ p.p_id)
      (fun () -> Handlers.run ~attempt ~fuel:p.p_fuel p.p_work)
  in
  let process_batch () =
    match Admission.drain queue with
    | [] -> ()
    | items ->
        incr batches;
        Obs.Metrics.incr m_batches;
        let speculated : (int, _ result) Hashtbl.t = Hashtbl.create 16 in
        (* speculation is skipped under an active injector (event
           stream must stay sequential) and under an ambient store:
           sequential-only attempts give every request a well-defined
           store delta, which is what makes [store_degraded] and the
           summary's store stats deterministic at every -j *)
        if Fault.Hooks.current () = None && Store.Handle.get () = None then
          Par.map_list ~label:"serve.batch"
            (fun (i, p) ->
               let r =
                 match invoke_handler p ~attempt:1 with
                 | v -> Ok v
                 | exception e -> Error e
               in
               (i, r))
            (List.mapi (fun i p -> (i, p)) items)
          |> List.iter (fun (i, r) -> Hashtbl.replace speculated i r);
        List.iteri
          (fun i (p : pending) ->
             (* per-request degradation accounting: a request counts
                (once) when any of its attempts hit store corruption
                or a failed store write — i.e. it completed by
                recompute rather than by trusting the disk *)
             let degraded = ref false in
             let observed_invoke ~attempt =
               match Store.Handle.get () with
               | None -> invoke_handler p ~attempt
               | Some disk ->
                   let before = Store.Disk.stats disk in
                   Fun.protect
                     (fun () -> invoke_handler p ~attempt)
                     ~finally:(fun () ->
                       let after = Store.Disk.stats disk in
                       if
                         (not !degraded)
                         && (after.Store.Disk.corrupt > before.Store.Disk.corrupt
                            || after.Store.Disk.write_failures
                               > before.Store.Disk.write_failures)
                       then begin
                         degraded := true;
                         incr store_degraded
                       end)
             in
             let invoke ~attempt =
               if attempt = 1 then
                 match Hashtbl.find_opt speculated i with
                 | Some r -> (
                     Hashtbl.remove speculated i;
                     match r with Ok v -> v | Error e -> raise e)
                 | None -> observed_invoke ~attempt
               else observed_invoke ~attempt
             in
             let cls = Protocol.work_class p.p_work in
             let breaker = breaker_of cls in
             let schedule =
               Array.of_list
                 (R.Retry.delays
                    { config.retry with
                      R.Retry.seed =
                        config.seed lxor Hashtbl.hash (p.p_id, p.p_arrived) })
             in
             let quarantine ~attempts cause =
               report_item p.p_id (R.Run_report.Quarantined { attempts; cause });
               respond (Protocol.quarantined ~id:p.p_id ~attempts cause)
             in
             (* out of retries (or the class breaker never recovered):
                quarantine with [cause]; else back off and re-attempt *)
             let rec retry_or k cause =
               if k >= config.retry.R.Retry.max_attempts then
                 quarantine ~attempts:k cause
               else begin
                 let d = schedule.(k - 1) in
                 vt := !vt + d;
                 waited := !waited + d;
                 Obs.Span.instant ~cat:"serve"
                   ~args:
                     [ ("id", p.p_id); ("delay", string_of_int d);
                       ("vt", string_of_int !vt) ]
                   "backoff";
                 attempt (k + 1)
               end
             and attempt k =
               incr vt;
               if not (R.Breaker.acquire breaker ~now:!vt) then
                 retry_or k (R.Quarantine.Breaker_open { resource = cls })
               else
                 match invoke ~attempt:k with
                 | Handlers.Done payload, spent ->
                     vt := !vt + spent;
                     R.Breaker.success breaker;
                     let latency = !vt - p.p_arrived in
                     rev_latencies := latency :: !rev_latencies;
                     Obs.Metrics.incr m_completed;
                     Obs.Metrics.observe m_latency latency;
                     report_item p.p_id (R.Run_report.Completed { attempts = k });
                     respond (Protocol.ok ~id:p.p_id ~latency ~attempts:k payload)
                 | Handlers.Deadline_hit { spent }, _ ->
                     (* the request's own fuel ran out: not an
                        environmental failure, so the breaker does not
                        trip — a typed deadline response, terminally *)
                     vt := !vt + spent;
                     R.Breaker.success breaker;
                     report_item p.p_id
                       (R.Run_report.Quarantined
                          { attempts = k;
                            cause = R.Quarantine.Deadline_exceeded { spent } });
                     respond
                       (Protocol.deadline ~id:p.p_id ~attempts:k ~spent ())
                 | exception Fault.Condition.Simulated c ->
                     R.Breaker.failure breaker ~now:!vt
                       ~cause:(Fault.Condition.to_string c);
                     retry_or k
                       (R.Quarantine.Retries_exhausted { attempts = k; last = c })
                 | exception R.Quarantine.Reject detail ->
                     R.Breaker.failure breaker ~now:!vt ~cause:detail;
                     report_item p.p_id
                       (R.Run_report.Quarantined
                          { attempts = k;
                            cause = R.Quarantine.Rejected { detail } });
                     respond (Protocol.error ~id:p.p_id ~attempts:k detail)
                 | exception e ->
                     let exn = Printexc.to_string e in
                     R.Breaker.failure breaker ~now:!vt ~cause:exn;
                     quarantine ~attempts:k (R.Quarantine.Crash { exn })
             in
             attempt 1)
          items
  in
  (* A line that never became an admitted request: typed error
     response, counted as [malformed], NOT as a request error — the
     accounting contract equates [admitted] with terminal responses
     of admitted requests only. *)
  let bad_line ~id detail =
    incr malformed;
    Obs.Metrics.incr m_malformed;
    Obs.Span.instant ~cat:"serve" ~args:[ ("id", id) ] "malformed";
    emit (Protocol.render (Protocol.error ~id detail))
  in
  let serve_stats ~id ~full =
    incr stats_served;
    let counters =
      [ ("queue", Json.Int (Admission.depth queue));
        ("capacity", Json.Int (Admission.capacity queue));
        ("vt", Json.Int !vt);
        ("admitted", Json.Int (Admission.admitted queue));
        ("shed", Json.Int (Admission.shed queue));
        ("completed", Json.Int !completed);
        ("errors", Json.Int !errors);
        ("deadline", Json.Int !deadlined);
        ("quarantined", Json.Int !quarantined);
        ("malformed", Json.Int !malformed);
        ("batches", Json.Int !batches);
        ("breakers",
         Json.Obj
           (List.rev_map
              (fun b ->
                 (R.Breaker.resource b,
                  Json.Str (R.Breaker.state_to_string (R.Breaker.state b))))
              !rev_breakers)) ]
    in
    let body =
      if not full then counters
      else
        (* the full metrics snapshot may embed scheduling-dependent
           gauge high-water marks; byte-compare scripts use the
           deterministic counters above instead *)
        counters
        @ [ ("metrics",
             match Json.parse (Obs.Metrics.to_json (Obs.Metrics.snapshot ())) with
             | Ok v -> v
             | Error _ -> Json.Null) ]
    in
    emit
      (Protocol.render
         { Protocol.id; status = Protocol.Ok_; latency = None; attempts = None;
           body = [ ("stats", Json.Obj body) ] })
  in
  let drained = ref false in
  let rec loop () =
    match source () with
    | None ->
        process_batch ();
        drained := true
    | Some raw ->
        incr line_no;
        let line =
          (* tolerate CRLF framing *)
          let n = String.length raw in
          if n > 0 && raw.[n - 1] = '\r' then String.sub raw 0 (n - 1) else raw
        in
        let line_id = Printf.sprintf "line:%d" !line_no in
        if line = "" || (String.length line > 0 && line.[0] = '#') then loop ()
        else if String.length line > config.max_line then begin
          bad_line ~id:line_id
            (Printf.sprintf "oversized request: %d bytes > max %d"
               (String.length line) config.max_line);
          loop ()
        end
        else
          match Protocol.parse ~line_id line with
          | Error detail ->
              bad_line ~id:line_id detail;
              loop ()
          | Ok (Protocol.Stats { id; full }) ->
              serve_stats ~id ~full;
              loop ()
          | Ok Protocol.Flush ->
              process_batch ();
              loop ()
          | Ok Protocol.Shutdown ->
              process_batch ();
              drained := true
          | Ok (Protocol.Work { id; fuel; work }) ->
              incr vt;
              let p =
                { p_id = id; p_work = work;
                  p_fuel = Option.value ~default:config.default_fuel fuel;
                  p_arrived = !vt }
              in
              (match Admission.admit queue p with
               | `Admitted -> Obs.Metrics.incr m_admitted
               | `Shed ->
                   Obs.Metrics.incr m_shed;
                   Obs.Span.instant ~cat:"serve"
                     ~args:[ ("id", id) ] "overloaded";
                   emit
                     (Protocol.render
                        (Protocol.overloaded ~id
                           ~depth:(Admission.depth queue)
                           ~capacity:(Admission.capacity queue))));
              loop ()
  in
  loop ();
  Obs.Metrics.add m_quarantined !quarantined;
  let summary =
    { admitted = Admission.admitted queue;
      shed = Admission.shed queue;
      completed = !completed;
      errors = !errors;
      deadlined = !deadlined;
      quarantined = !quarantined;
      malformed = !malformed;
      stats_served = !stats_served;
      batches = !batches;
      vt = !vt;
      drained = !drained;
      latencies = List.rev !rev_latencies;
      report =
        { R.Run_report.label = "serve";
          seed = config.seed;
          items = List.rev !rev_report_items;
          waited = !waited;
          journal_skipped = 0 };
      store =
        (match (store_at_start, Store.Handle.get ()) with
        | Some before, Some disk ->
            Some (Store.Disk.sub_stats (Store.Disk.stats disk) before)
        | _ -> None);
      store_degraded = !store_degraded }
  in
  emit (summary_to_json summary);
  summary

let run_script ?config lines =
  let remaining = ref lines in
  let source () =
    match !remaining with
    | [] -> None
    | l :: rest ->
        remaining := rest;
        Some l
  in
  let rev_out = ref [] in
  let emit line = rev_out := line :: !rev_out in
  let summary = run ?config ~emit source in
  (List.rev !rev_out, summary)
