module O = Apps.Outcome

type case = {
  input_desc : string;
  spec_holds : bool;
  outcome : O.t;
  divergent : bool;
}

(* The specification of ReadPOSTData, straight from the paper:
   contentLen must be non-negative and the input must fit the
   allocated buffer. *)
let spec_of ~content_len ~body_len =
  content_len >= 0 && body_len <= Apps.Nullhttpd.usable_for ~content_len

let nullhttpd_sweep ?(seed = 42) ~config () =
  let rng = Vulndb.Prng.create ~seed in
  let content_lens = [ 0; 1; 64; 1024; 2000 ] in
  let body_lens cl =
    let buffer = Apps.Nullhttpd.usable_for ~content_len:cl in
    [ 0; cl; buffer; buffer + 1; buffer + 1024;
      Vulndb.Prng.below rng (2 * (buffer + 1)) ]
  in
  let run_case content_len body_len =
    let instance = Apps.Nullhttpd.setup ~config () in
    let body = String.make body_len 'a' in
    let outcome = Apps.Nullhttpd.handle_post instance ~content_len ~body in
    let spec_holds = spec_of ~content_len ~body_len in
    { input_desc = Printf.sprintf "contentLen=%d body=%dB" content_len body_len;
      spec_holds;
      outcome;
      divergent = (not spec_holds) && O.verdict outcome <> O.Blocked }
  in
  List.concat_map
    (fun cl ->
       List.map (run_case cl) (List.sort_uniq compare (body_lens cl)))
    content_lens

let rediscover_6255 ?(seed = 42) () =
  let cases = nullhttpd_sweep ~seed ~config:Apps.Nullhttpd.v0_5_1 () in
  match List.find_opt (fun c -> c.divergent) cases with
  | None -> None
  | Some c ->
      Some
        { Finding.title =
            "Null HTTPD ReadPOSTData Remote Heap Overflow (rediscovery of Bugtraq #6255)";
          app = "Null HTTPD 0.5.1";
          severity = Finding.Critical;
          summary =
            "With a correct, non-negative Content-Length, ReadPOSTData keeps calling \
             recv while full 1024-byte chunks arrive -- the loop condition uses || \
             where && was intended -- so a peer that simply sends more data than \
             declared overflows PostData on the heap.";
          witness = c.input_desc;
          observed = O.to_string c.outcome;
          violated_predicate = "length(input) <= size(PostData)";
          suggested_check =
            "while ((rc == 1024) && (x < contentLen)) -- and reject bodies longer \
             than contentLen" }

let confirm_fix ?(seed = 42) () =
  let cases = nullhttpd_sweep ~seed ~config:Apps.Nullhttpd.fully_fixed () in
  List.for_all (fun c -> not c.divergent) cases

let pp_cases ppf cases =
  Format.fprintf ppf "@[<v>%-34s %-6s %-10s %s@," "input" "spec" "divergent" "outcome";
  List.iter
    (fun c ->
       Format.fprintf ppf "%-34s %-6s %-10s %s@," c.input_desc
         (if c.spec_holds then "ok" else "VIOL")
         (if c.divergent then "YES" else "-")
         (O.to_string c.outcome))
    cases;
  Format.fprintf ppf "@]"
