type severity = Low | Medium | High | Critical

type t = {
  title : string;
  app : string;
  severity : severity;
  summary : string;
  witness : string;
  observed : string;
  violated_predicate : string;
  suggested_check : string;
}

let severity_to_string = function
  | Low -> "low"
  | Medium -> "medium"
  | High -> "high"
  | Critical -> "critical"

let pp ppf t =
  Format.fprintf ppf
    "@[<v>FINDING: %s@,\
     \  application : %s@,\
     \  severity    : %s@,\
     \  summary     : %s@,\
     \  witness     : %s@,\
     \  observed    : %s@,\
     \  violated    : %s@,\
     \  fix         : %s@]"
    t.title t.app (severity_to_string t.severity) t.summary t.witness t.observed
    t.violated_predicate t.suggested_check

let to_report t = Format.asprintf "%a" pp t
