let boundary_ints =
  [ 0; 1; -1; 2; 99; 100; 101; 1023; 1024; 1025;
    0x7fff_ffff; -0x8000_0000; 0x8000_0000; 0xffff_ff00;
    -800; -1024; 4_294_967_200 ]

let int_candidates ~seed ~n =
  let rng = Vulndb.Prng.create ~seed in
  let random_tail =
    List.init n (fun _ ->
        Vulndb.Prng.in_range rng ~low:(-0x8000_0000) ~high:0x8000_0000)
  in
  boundary_ints @ random_tail

let int_strings ~seed ~n =
  List.map string_of_int (int_candidates ~seed ~n)
  @ [ ""; "abc"; "12abc"; "+7"; "-"; " 42" ]

let length_strings ~seed ~n ~around =
  let rng = Vulndb.Prng.create ~seed in
  let lengths =
    [ 0; 1; max 0 (around - 1); around; around + 1; around + 4; (2 * around) + 1 ]
    @ List.init n (fun _ -> Vulndb.Prng.below rng (4 * (around + 1)))
  in
  List.map (fun len -> String.make len 'a') (List.sort_uniq compare lengths)

let traversal_strings =
  [ "index.html"; "cgi/search.exe"; "../secret"; "..%2fsecret";
    "..%252fsecret"; "..%252f..%252fwinnt%252fsystem32%252fcmd.exe";
    "a/../../b"; "%2e%2e/config"; "..%25252fdeep" ]

let format_strings =
  [ "/var/statmon/sm/host1"; "ordinary name"; "%x"; "%8x%8x"; "%n";
    "AA%8x%8x%n"; "100%% legit"; "%s%s%s" ]

let scenario_product keyed =
  let add_key envs (key, values) =
    List.concat_map
      (fun env -> List.map (fun v -> Pfsm.Env.add key v env) values)
      envs
  in
  List.fold_left add_key [ Pfsm.Env.empty ] keyed
