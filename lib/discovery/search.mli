(** Model-level hidden-path search.

    Drive generated scenarios through a model and harvest every
    (operation, pFSM) site whose hidden IMPL_ACPT transition fires —
    "constructing the FSM allowed us to uncover this new
    vulnerability" (Section 5.1), mechanised. *)

type hit = {
  operation : string;
  pfsm : Pfsm.Primitive.t;
  scenario : Pfsm.Env.t;
}

val hidden_paths : Pfsm.Model.t -> scenarios:Pfsm.Env.t list -> hit list
(** One hit per (site, first witnessing scenario). *)

val findings_of_hits : model:Pfsm.Model.t -> hit list -> Finding.t list

val discover : Pfsm.Model.t -> scenarios:Pfsm.Env.t list -> Finding.t list
