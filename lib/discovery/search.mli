(** Model-level hidden-path search.

    Drive generated scenarios through a model and harvest every
    (operation, pFSM) site whose hidden IMPL_ACPT transition fires —
    "constructing the FSM allowed us to uncover this new
    vulnerability" (Section 5.1), mechanised. *)

type hit = {
  operation : string;
  pfsm : Pfsm.Primitive.t;
  scenario : Pfsm.Env.t;
}

type exploration = {
  hits : hit list;  (** one hit per (site, first witnessing scenario) *)
  coverage : Fault.Budget.coverage;
      (** [Partial] when the budget cut the scenario list short *)
}

val hidden_paths :
  ?budget:Fault.Budget.t -> Pfsm.Model.t -> scenarios:Pfsm.Env.t list -> exploration
(** Analyse the scenarios (or the budget-sized prefix of them, in
    order — so growing the budget never loses a previously found
    hit). *)

val findings_of_hits : model:Pfsm.Model.t -> hit list -> Finding.t list

val discover : Pfsm.Model.t -> scenarios:Pfsm.Env.t list -> Finding.t list
