(** Candidate-input generation for data-driven witness search.

    Hidden paths are found by {e data}: boundary values around every
    specification constant, the classic malicious substrings, and a
    deterministic random tail.  The generators are seeded, so a
    discovery run is reproducible. *)

val boundary_ints : int list
(** 0, ±1, 100/101, the int32 edges, and the wrap values attackers
    feed to [atoi]. *)

val int_candidates : seed:int -> n:int -> int list
(** Boundary values followed by [n] seeded random 32-bit-ish values. *)

val int_strings : seed:int -> n:int -> string list
(** Decimal renderings of {!int_candidates} plus non-numeric junk. *)

val length_strings : seed:int -> n:int -> around:int -> string list
(** Strings with lengths clustered around the boundary [around]. *)

val traversal_strings : string list
(** ["../"], ["..%2f"], ["..%252f"], nested variants, and innocuous
    paths. *)

val format_strings : string list
(** Benign names plus [%x]/[%n]-bearing payload shapes. *)

val scenario_product :
  (string * Pfsm.Value.t list) list -> Pfsm.Env.t list
(** Cartesian product of candidate values for each scenario key,
    yielding complete scenario environments. *)
