(** A discovered vulnerability, packaged the way the authors reported
    #6255 to Bugtraq. *)

type severity = Low | Medium | High | Critical

type t = {
  title : string;
  app : string;
  severity : severity;
  summary : string;           (** what is wrong, one paragraph *)
  witness : string;           (** the concrete input that proves it *)
  observed : string;          (** what the witness made the system do *)
  violated_predicate : string;(** the spec predicate the impl fails to enforce *)
  suggested_check : string;   (** where/what to fix *)
}

val severity_to_string : severity -> string

val pp : Format.formatter -> t -> unit

val to_report : t -> string
(** Multi-line advisory text. *)
