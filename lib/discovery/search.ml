type hit = {
  operation : string;
  pfsm : Pfsm.Primitive.t;
  scenario : Pfsm.Env.t;
}

type exploration = { hits : hit list; coverage : Fault.Budget.coverage }

let hidden_paths ?budget model ~scenarios =
  let total = List.length scenarios in
  let admitted =
    match budget with
    | None -> scenarios
    | Some b ->
        (* an explicit prefix: scenario order is part of the contract,
           so a bigger budget only ever extends what was analysed *)
        let rec take acc = function
          | [] -> List.rev acc
          | s :: rest ->
              if Fault.Budget.take b then take (s :: acc) rest else List.rev acc
        in
        take [] scenarios
  in
  (* scenario fan-out rides the Par pool; ordered reduction keeps the
     report — and thus the hits — identical for any job count *)
  let report = Pfsm.Analysis.analyze ~par:true model ~scenarios:admitted in
  let hits =
    List.filter_map
      (fun (f : Pfsm.Analysis.pfsm_finding) ->
         match f.Pfsm.Analysis.example with
         | Some scenario when f.Pfsm.Analysis.hidden_hits > 0 ->
             Some { operation = f.Pfsm.Analysis.operation; pfsm = f.Pfsm.Analysis.pfsm; scenario }
         | Some _ | None -> None)
      report.Pfsm.Analysis.findings
  in
  { hits; coverage = Fault.Budget.coverage ~covered:(List.length admitted) ~total }

let findings_of_hits ~model hits =
  let finding h =
    let p = h.pfsm in
    { Finding.title =
        Printf.sprintf "%s: hidden IMPL_ACPT path in %s / %s"
          model.Pfsm.Model.name h.operation p.Pfsm.Primitive.name;
      app = model.Pfsm.Model.name;
      severity = Finding.High;
      summary =
        Printf.sprintf
          "The implementation accepts objects the specification of activity %S rejects."
          p.Pfsm.Primitive.activity;
      witness = Format.asprintf "%a" Pfsm.Env.pp h.scenario;
      observed = "model cascade completes through a hidden transition";
      violated_predicate = Pfsm.Predicate.to_string p.Pfsm.Primitive.spec;
      suggested_check =
        Printf.sprintf "enforce %s at %s"
          (Pfsm.Predicate.to_string p.Pfsm.Primitive.spec)
          h.operation }
  in
  List.map finding hits

let discover model ~scenarios =
  findings_of_hits ~model (hidden_paths model ~scenarios).hits
