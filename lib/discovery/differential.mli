(** Simulation-level differential testing: generate inputs, run the
    {e real} (simulated) program, and flag every input that violates
    a specification predicate yet is not rejected.

    This is how the reproduction re-discovers Bugtraq #6255 without
    being told about it: fuzzing NULL HTTPD 0.5.1 (the version with
    the negative-Content-Length fix) with {e well-formed} requests
    whose bodies exceed the buffer shows the recv loop accepting them
    all — the []]-for-[&&] logic error. *)

type case = {
  input_desc : string;
  spec_holds : bool;          (** does the input satisfy the spec? *)
  outcome : Apps.Outcome.t;
  divergent : bool;
      (** spec rejects the input but the program did not block it *)
}

val nullhttpd_sweep : ?seed:int -> config:Apps.Nullhttpd.config -> unit -> case list
(** Sweep (contentLen, body-length) combinations through
    [handle_post]. *)

val rediscover_6255 : ?seed:int -> unit -> Finding.t option
(** Run the sweep against v0.5.1; package the first divergence as the
    #6255 advisory.  [None] would mean the bug is gone (e.g. when run
    against [fully_fixed] internally it is). *)

val confirm_fix : ?seed:int -> unit -> bool
(** The same sweep against the [&&]-fixed build finds no divergence. *)

val pp_cases : Format.formatter -> case list -> unit
