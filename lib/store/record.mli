(** The checksummed on-disk record codec.

    Every persisted value is framed as one self-verifying record:

    {v DFSMSTORE <version> <payload-length> <md5-hex-of-payload>\n<payload> v}

    The header is fixed-field ASCII so a torn write (any strict byte
    prefix of a record) is always detectable: either the header line is
    incomplete, or the payload is shorter than the header declares.  A
    bit flip anywhere — header or payload — fails the digest or the
    field parse.  Decoding therefore returns a typed error taxonomy
    rather than garbage, and never raises. *)

val current_version : int

type error =
  | Torn
      (** The record is a strict prefix of a committed one: the header
          line never completed, or the payload is shorter than the
          header declares. *)
  | Checksum_mismatch
      (** Structurally complete but corrupt: bad magic, an unparseable
          header field, trailing bytes, or a payload digest mismatch. *)
  | Stale_version
      (** A well-formed record written by an incompatible codec
          version. *)

val error_to_string : error -> string

val encode : string -> string
(** Frame a payload as a record. *)

val decode : string -> (string, error) result
(** Verify a record image and return its payload.  Total: any byte
    string maps to a payload or a typed error. *)

(** {2 Sealed lines}

    A one-line variant of the same idea for append-only journals
    (checkpoint, manifest): [seal_line l] prefixes [l] with the MD5 of
    its content, so a reader can tell a corrupted line from a merely
    torn one.  [l] must not contain a newline. *)

val seal_line : string -> string

val unseal_line : string -> [ `Sealed of string | `Mismatch | `Unsealed ]
(** [`Sealed content] — a sealed line whose digest verifies;
    [`Mismatch] — sealed framing whose digest (or truncated content)
    does not verify; [`Unsealed] — no seal framing at all (a legacy or
    foreign line: the caller decides how to parse it). *)

(** Test seam: frame a payload under an arbitrary codec version. *)
module For_testing : sig
  val encode_with_version : version:int -> string -> string
end
