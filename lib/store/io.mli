(** The store's only doorway to the filesystem — and therefore the
    fault-injection seam for all of it.

    Every record commit and every journal append consults
    {!Fault.Hooks.store_write_fault} exactly once and applies the
    injected fault faithfully: a torn write really leaves a truncated
    record on disk, a bit flip really lands in the committed bytes, an
    ENOSPC/EACCES really refuses the write, and a crash-before-rename
    really strands the tmp file.  Real [Sys_error]s surface through the
    same typed result, so callers degrade identically whether the
    filesystem misbehaved for real or under a plan. *)

type write_error =
  | Refused of { path : string; errno : string }
      (** The write failed outright (injected ENOSPC/EACCES, or a real
          [Sys_error]); nothing was committed. *)
  | Crashed of { path : string }
      (** The commit died between tmp write and rename: the
          destination is untouched and an orphan tmp remains. *)

val write_error_to_string : write_error -> string

val read_file : string -> (string, [ `Enoent | `Unreadable of string ]) result
(** The whole file, binary. *)

val commit : tmp:string -> dest:string -> string -> (unit, write_error) result
(** Atomic tmp+write+rename commit of [data], with one injected-fault
    consultation.  Injected torn writes and bit flips still commit
    (silent corruption, caught by the record checksum on read);
    injected errors remove the tmp; an injected crash leaves it. *)

val append_line :
  out_channel -> path:string -> string -> (unit, write_error) result
(** Append [line ^ "\n"] to an already-open channel and flush, with
    one injected-fault consultation (a torn append writes a prefix, a
    flip corrupts the line, an error or crash skips the append). *)

val mkdir_p : string -> unit

val remove_if_exists : string -> unit

val files_under : string -> string list
(** All regular files below a directory (recursive), sorted, as paths
    relative to it.  Missing directory = []. *)
