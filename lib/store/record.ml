let current_version = 1

let magic = "DFSMSTORE"

type error = Torn | Checksum_mismatch | Stale_version

let error_to_string = function
  | Torn -> "torn"
  | Checksum_mismatch -> "checksum-mismatch"
  | Stale_version -> "stale-version"

let encode_with_version ~version payload =
  Printf.sprintf "%s %d %d %s\n%s" magic version (String.length payload)
    (Digest.to_hex (Digest.string payload))
    payload

let encode payload = encode_with_version ~version:current_version payload

let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

let all_hex s =
  let ok = ref (s <> "") in
  String.iter (fun c -> if not (is_hex c) then ok := false) s;
  !ok

(* A record is torn when it is a strict prefix of some committed
   record — the only shapes an interrupted-but-otherwise-faithful
   write can leave.  Everything else structurally wrong is corruption:
   no honest prefix has a mangled magic, an over-long payload, or a
   digest that fails to verify at the declared length. *)
let decode s =
  match String.index_opt s '\n' with
  | None ->
      (* the header line itself never completed; if what is there is a
         prefix of a valid header shape, call it torn *)
      let shape_prefix =
        String.length s <= String.length magic + 80
        && (let m = min (String.length s) (String.length magic) in
            String.sub s 0 m = String.sub magic 0 m)
      in
      Error (if shape_prefix then Torn else Checksum_mismatch)
  | Some nl -> (
      let header = String.sub s 0 nl in
      let payload = String.sub s (nl + 1) (String.length s - nl - 1) in
      match String.split_on_char ' ' header with
      | [ m; version; len; digest ] when m = magic -> (
          match int_of_string_opt version, int_of_string_opt len with
          | Some v, _ when v <> current_version ->
              (* recognisably ours, recognisably another codec *)
              Error Stale_version
          | Some _, Some len when len >= 0 ->
              if not (all_hex digest && String.length digest = 32) then
                Error Checksum_mismatch
              else if String.length payload < len then Error Torn
              else if String.length payload > len then Error Checksum_mismatch
              else if Digest.to_hex (Digest.string payload) <> digest then
                Error Checksum_mismatch
              else Ok payload
          | _ -> Error Checksum_mismatch)
      | _ -> Error Checksum_mismatch)

(* ---- sealed lines -------------------------------------------------- *)

let seal_line line =
  Printf.sprintf "%s %s" (Digest.to_hex (Digest.string line)) line

let unseal_line l =
  let n = String.length l in
  if n >= 33 && l.[32] = ' ' && all_hex (String.sub l 0 32) then begin
    let content = String.sub l 33 (n - 33) in
    if Digest.to_hex (Digest.string content) = String.sub l 0 32 then
      `Sealed content
    else `Mismatch
  end
  else if n >= 1 && n <= 33 && all_hex (String.sub l 0 (min n 32)) then
    (* a truncated seal prefix: framing present but unverifiable *)
    `Mismatch
  else `Unsealed

module For_testing = struct
  let encode_with_version = encode_with_version
end
