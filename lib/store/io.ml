type write_error =
  | Refused of { path : string; errno : string }
  | Crashed of { path : string }

let write_error_to_string = function
  | Refused { path; errno } -> Printf.sprintf "%s: %s" path errno
  | Crashed { path } -> Printf.sprintf "%s: crash before rename" path

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> Ok data
  | exception Sys_error msg ->
      if Sys.file_exists path then Error (`Unreadable msg) else Error `Enoent

let remove_if_exists path = try Sys.remove path with Sys_error _ -> ()

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ -> ()  (* lost a race with a concurrent mkdir *)
  end

let write_all path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

(* Apply an injected fault to the bytes of one write.  [`Commit]
   variants still reach disk (silent corruption, the checksum's
   problem); the others abort the write in the stated way. *)
let perturb data =
  match Fault.Hooks.store_write_fault ~len:(String.length data) with
  | None -> `Commit data
  | Some (Fault.Injector.Io_torn keep) -> `Commit (String.sub data 0 keep)
  | Some (Fault.Injector.Io_flip (off, bit)) ->
      let b = Bytes.of_string data in
      Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor (1 lsl bit)));
      `Commit (Bytes.to_string b)
  | Some (Fault.Injector.Io_error errno) -> `Refuse errno
  | Some Fault.Injector.Io_crash -> `Crash

let commit ~tmp ~dest data =
  match perturb data with
  | `Refuse errno ->
      remove_if_exists tmp;
      Error (Refused { path = dest; errno })
  | `Crash -> (
      (* the tmp write itself completed; the process "died" before the
         rename, so the destination never changes and the tmp strands *)
      match write_all tmp data with
      | () -> Error (Crashed { path = dest })
      | exception Sys_error errno ->
          remove_if_exists tmp;
          Error (Refused { path = dest; errno }))
  | `Commit data -> (
      match
        write_all tmp data;
        Sys.rename tmp dest
      with
      | () -> Ok ()
      | exception Sys_error errno ->
          remove_if_exists tmp;
          Error (Refused { path = dest; errno }))

let append_line oc ~path line =
  match perturb (line ^ "\n") with
  | `Refuse errno -> Error (Refused { path; errno })
  | `Crash -> Error (Crashed { path })
  | `Commit data -> (
      match
        Out_channel.output_string oc data;
        Out_channel.flush oc
      with
      | () -> Ok ()
      | exception Sys_error errno -> Error (Refused { path; errno }))

let files_under dir =
  let rec walk rel acc =
    let abs = if rel = "" then dir else Filename.concat dir rel in
    match Sys.readdir abs with
    | names ->
        Array.fold_left
          (fun acc name ->
            let rel = if rel = "" then name else Filename.concat rel name in
            let abs = Filename.concat dir rel in
            if Sys.is_directory abs then walk rel acc else rel :: acc)
          acc names
    | exception Sys_error _ -> acc
  in
  List.sort compare (walk "" [])
