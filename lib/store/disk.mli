(** The on-disk content-addressed store.

    Layout under the store root:

    {v
    objects/<k0k1>/<k2k3>/<key>.rec   one checksummed record per key
    objects/.../<key>.<tag>.tmp       in-flight commits (orphaned by a crash)
    manifest                          append-only journal of committed keys
    v}

    Keys are lowercase hex digests (two-level sharding on the first
    four characters).  A commit is tmp+write+rename, so a reader never
    observes a half-written record under an honest filesystem; torn
    and flipped records (crashes, injected faults) are caught by the
    record checksum on read.

    Robustness contract: {!find} and {!put} never raise on I/O or
    corruption.  A corrupt, torn, unparseable or version-mismatched
    record reads as a miss — counted in [store.corrupt], evicted on
    the spot — and the caller's recompute-and-rewrite counts in
    [store.repaired].  A failed write is counted and forgotten: the
    store silently degrades to recompute until the filesystem
    recovers.  All I/O goes through {!Io}, so every one of these paths
    is exercised by fault plans. *)

type t

type stats = {
  hits : int;
  misses : int;
  corrupt : int;  (** records evicted after failing verification *)
  repaired : int;  (** evicted keys later rewritten by a recompute *)
  writes : int;
  write_failures : int;
}

val zero_stats : stats

val stats_to_json : stats -> string

val sub_stats : stats -> stats -> stats
(** Pointwise difference (a phase delta). *)

val valid_key : string -> bool
(** Lowercase hex, at least 8 characters. *)

val open_ : dir:string -> t
(** Open (creating directories as needed) a store rooted at [dir].
    Cheap; holds one lazily-opened manifest channel.  Handles are
    domain-safe: record files are written under process-unique tmp
    names and the manifest channel is mutex-guarded.
    @raise Sys_error when [dir] exists but is not a directory. *)

val dir : t -> string

val find : t -> key:string -> string option
(** The payload committed under [key], verified.  [None] on a missing
    record (a miss) or on any failed verification (counted corrupt,
    evicted).  @raise Invalid_argument on an invalid key. *)

val put : t -> key:string -> payload:string -> unit
(** Commit [payload] under [key] (last write wins).  Write failures
    degrade silently into [write_failures].
    @raise Invalid_argument on an invalid key. *)

val note_corrupt : t -> key:string -> unit
(** A caller-level decode of [key]'s payload failed (stale marshal
    image, wrong tag): evict and account it like record-level
    corruption, so the rewrite counts as a repair. *)

val stats : t -> stats
(** This handle's counters.  The same totals stream into the
    process-wide [Obs.Metrics] registry as [store.*]. *)

val record_path : t -> key:string -> string
(** Absolute path of the record file for [key] (tests, fsck). *)

val manifest_path : t -> string

val manifest_keys : t -> string list
(** Keys whose manifest lines verify, deduplicated, journal order.
    Advisory: the object tree is the source of truth. *)

val object_files : t -> string list
(** All files under [objects/], relative to it, sorted. *)

val rewrite_manifest : t -> keys:string list -> unit
(** Atomically replace the manifest with one sealed line per key
    (fsck's compaction).  Degrades silently on write failure. *)

val close : t -> unit
(** Close the manifest channel (a later {!put} reopens it). *)
