(** Tagged Marshal payloads for store records.

    The tag names the logical type of the value ("memo", "lint-row",
    ...) so a key collision across callers can never hand the wrong
    bytes to [Marshal.from_string].  Values are marshalled with
    [Closures], which embeds the compiler's code digest — a payload
    written by a different binary fails to unmarshal and reads as
    [None], exactly like any other stale entry. *)

val to_payload : tag:string -> 'a -> string
(** [tag] must be newline-free. *)

val of_payload : tag:string -> string -> 'a option
(** [None] on a tag mismatch or any unmarshal failure.  The caller is
    expected to treat [None] as corruption ({!Disk.note_corrupt}) and
    recompute. *)
