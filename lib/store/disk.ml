type stats = {
  hits : int;
  misses : int;
  corrupt : int;
  repaired : int;
  writes : int;
  write_failures : int;
}

let zero_stats =
  { hits = 0; misses = 0; corrupt = 0; repaired = 0; writes = 0;
    write_failures = 0 }

let stats_to_json s =
  Printf.sprintf
    "{\"hits\": %d, \"misses\": %d, \"corrupt\": %d, \"repaired\": %d, \
     \"writes\": %d, \"write_failures\": %d}"
    s.hits s.misses s.corrupt s.repaired s.writes s.write_failures

let sub_stats a b =
  { hits = a.hits - b.hits;
    misses = a.misses - b.misses;
    corrupt = a.corrupt - b.corrupt;
    repaired = a.repaired - b.repaired;
    writes = a.writes - b.writes;
    write_failures = a.write_failures - b.write_failures }

(* Process-wide metrics (one registry for every handle) plus
   per-handle atomics so a phase can diff its own store's numbers. *)
let m_hits = Obs.Metrics.counter "store.hits"
let m_misses = Obs.Metrics.counter "store.misses"
let m_corrupt = Obs.Metrics.counter "store.corrupt"
let m_repaired = Obs.Metrics.counter "store.repaired"
let m_writes = Obs.Metrics.counter "store.writes"
let m_write_failures = Obs.Metrics.counter "store.write_failures"

type t = {
  root : string;
  lock : Mutex.t;  (* manifest channel + needs_repair table *)
  mutable manifest : out_channel option;
  needs_repair : (string, unit) Hashtbl.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  corrupt : int Atomic.t;
  repaired : int Atomic.t;
  writes : int Atomic.t;
  write_failures : int Atomic.t;
}

let bump cell metric =
  Atomic.incr cell;
  Obs.Metrics.incr metric

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let is_hex = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

let valid_key k =
  String.length k >= 8
  && (let ok = ref true in
      String.iter (fun c -> if not (is_hex c) then ok := false) k;
      !ok)

let check_key k =
  if not (valid_key k) then
    invalid_arg (Printf.sprintf "Store.Disk: invalid key %S" k)

let objects_dir t = Filename.concat t.root "objects"

let manifest_path t = Filename.concat t.root "manifest"

let shard_dir t key =
  Filename.concat
    (Filename.concat (objects_dir t) (String.sub key 0 2))
    (String.sub key 2 2)

let record_path t ~key =
  check_key key;
  Filename.concat (shard_dir t key) (key ^ ".rec")

let open_ ~dir =
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  Io.mkdir_p (Filename.concat dir "objects");
  { root = dir;
    lock = Mutex.create ();
    manifest = None;
    needs_repair = Hashtbl.create 16;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    corrupt = Atomic.make 0;
    repaired = Atomic.make 0;
    writes = Atomic.make 0;
    write_failures = Atomic.make 0 }

let dir t = t.root

let stats t =
  { hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    corrupt = Atomic.get t.corrupt;
    repaired = Atomic.get t.repaired;
    writes = Atomic.get t.writes;
    write_failures = Atomic.get t.write_failures }

let close t =
  locked t (fun () ->
      match t.manifest with
      | None -> ()
      | Some oc ->
          t.manifest <- None;
          close_out_noerr oc)

let manifest_channel_locked t =
  match t.manifest with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644
          (manifest_path t)
      in
      t.manifest <- Some oc;
      oc

let append_manifest t key =
  locked t (fun () ->
      match
        Io.append_line (manifest_channel_locked t) ~path:(manifest_path t)
          (Record.seal_line key)
      with
      | Ok () | Error _ -> ()  (* advisory: fsck rebuilds it *)
      | exception Sys_error _ -> ())

let mark_needs_repair t key = locked t (fun () -> Hashtbl.replace t.needs_repair key ())

let evict t ~key =
  bump t.corrupt m_corrupt;
  Io.remove_if_exists (record_path t ~key);
  mark_needs_repair t key

let note_corrupt t ~key =
  check_key key;
  evict t ~key

let find t ~key =
  let path = record_path t ~key in
  match Io.read_file path with
  | Error `Enoent ->
      bump t.misses m_misses;
      None
  | Error (`Unreadable _) ->
      (* can't even read it: treat as corruption, try to clear it *)
      evict t ~key;
      None
  | Ok raw -> (
      match Record.decode raw with
      | Ok payload ->
          bump t.hits m_hits;
          Some payload
      | Error _ ->
          evict t ~key;
          None)

let put t ~key ~payload =
  let dest = record_path t ~key in
  Io.mkdir_p (shard_dir t key);
  let tmp =
    Filename.concat (shard_dir t key)
      (Printf.sprintf "%s.%d.tmp" key (Par.unique_tag ()))
  in
  match Io.commit ~tmp ~dest (Record.encode payload) with
  | Error _ -> bump t.write_failures m_write_failures
  | Ok () ->
      bump t.writes m_writes;
      let was_corrupt =
        locked t (fun () ->
            let b = Hashtbl.mem t.needs_repair key in
            if b then Hashtbl.remove t.needs_repair key;
            b)
      in
      if was_corrupt then bump t.repaired m_repaired;
      append_manifest t key

let object_files t = Io.files_under (objects_dir t)

let manifest_keys t =
  match Io.read_file (manifest_path t) with
  | Error _ -> []
  | Ok data ->
      let seen = Hashtbl.create 64 in
      String.split_on_char '\n' data
      |> List.filter_map (fun line ->
             if line = "" then None
             else
               match Record.unseal_line line with
               | `Sealed key when valid_key key && not (Hashtbl.mem seen key)
                 ->
                   Hashtbl.add seen key ();
                   Some key
               | `Sealed _ | `Mismatch | `Unsealed -> None)

let rewrite_manifest t ~keys =
  close t;
  let content =
    String.concat "" (List.map (fun k -> Record.seal_line k ^ "\n") keys)
  in
  let tmp =
    Filename.concat t.root
      (Printf.sprintf "manifest.%d.tmp" (Par.unique_tag ()))
  in
  match Io.commit ~tmp ~dest:(manifest_path t) content with
  | Ok () | Error _ -> ()
