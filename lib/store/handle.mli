(** The process-wide ambient store handle.

    The CLI opens one store per run and installs it here; memoisation
    layers ({!Pfsm.Analysis.run_memo}, the linter's corpus sweep) pick
    it up without threading a handle through every signature.

    Safety valve: {!ambient} answers [None] while a result-perturbing
    fault plan is active ([Fault.Plan.sim_active]), because entries
    computed under such a plan would poison the store for honest runs.
    Durability-only plans (the [io_*] knobs) do not bypass the store —
    exercising it under those is the whole point. *)

val set : Disk.t option -> unit
(** Install (or clear) the ambient store. *)

val get : unit -> Disk.t option
(** The installed handle, ignoring fault plans (CLI teardown, stats). *)

val ambient : unit -> Disk.t option
(** The installed handle, or [None] when a sim-active fault plan is
    running on this domain. *)

val cached : tag:string -> key:string -> (unit -> 'a) -> 'a
(** [cached ~tag ~key compute] is [compute ()] routed through the
    ambient store: a verified record under [key] whose payload decodes
    with [tag] short-circuits the computation; anything else — miss,
    corrupt record, stale payload, no store installed — degrades to
    [compute ()], writing the result back when a store is present.
    Never raises beyond what [compute] raises. *)

val with_store : Disk.t option -> (unit -> 'a) -> 'a
(** Install for the duration of [f], restoring the previous handle
    (and closing the given one) afterwards. *)
