let to_payload ~tag v =
  if String.contains tag '\n' then invalid_arg "Store.Codec: tag has newline";
  tag ^ "\n" ^ Marshal.to_string v [ Marshal.Closures ]

let of_payload ~tag payload =
  match String.index_opt payload '\n' with
  | None -> None
  | Some nl ->
      if String.sub payload 0 nl <> tag then None
      else
        let body =
          String.sub payload (nl + 1) (String.length payload - nl - 1)
        in
        (* from_string re-checks the embedded code digest for closures;
           any mismatch (or truncation that survived the record
           checksum, which cannot happen, but belt and braces) lands
           here as Failure/invalid input *)
        (try Some (Marshal.from_string body 0) with _ -> None)
