let installed : Disk.t option Atomic.t = Atomic.make None

let set s = Atomic.set installed s

let get () = Atomic.get installed

let ambient () =
  match Atomic.get installed with
  | None -> None
  | Some _ when Fault.Hooks.sim_plan_active () -> None
  | some -> some

let cached ~tag ~key compute =
  match ambient () with
  | None -> compute ()
  | Some disk ->
      let recompute () =
        let v = compute () in
        Disk.put disk ~key ~payload:(Codec.to_payload ~tag v);
        v
      in
      (match Disk.find disk ~key with
      | None -> recompute ()
      | Some payload -> (
          match Codec.of_payload ~tag payload with
          | Some v -> v
          | None ->
              (* record verified but the payload is stale (another
                 binary's closures, wrong tag): account it like
                 corruption so the rewrite counts as a repair *)
              Disk.note_corrupt disk ~key;
              recompute ()))

let with_store s f =
  let prev = Atomic.get installed in
  Atomic.set installed s;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set installed prev;
      match s with None -> () | Some d -> Disk.close d)
    f
