(** Offline verify-and-repair for a store directory.

    [scan] walks the object tree, classifies every file, and checks
    the manifest against the set of verifiable records.  With
    [~repair:true] it also removes everything unsound (bad records,
    orphan tmps, strays) and compacts the manifest down to exactly the
    keys that verify — after which the store is clean by
    construction. *)

type status =
  | Sound  (** record decodes and its checksum verifies *)
  | Torn  (** strict prefix of a committed record (interrupted write) *)
  | Checksum_mismatch  (** structural corruption or flipped bits *)
  | Stale_version  (** written by another codec version *)
  | Orphan_tmp  (** in-flight commit stranded by a crash *)

val status_to_string : status -> string

type entry = {
  path : string;  (** relative to [objects/] *)
  key : string option;  (** for record files with a well-formed name *)
  status : status;
  removed : bool;  (** repair removed it *)
}

type report = {
  entries : entry list;  (** only non-[Sound] entries, sorted by path *)
  sound : int;
  torn : int;
  checksum_mismatch : int;
  stale_version : int;
  orphan_tmp : int;
  manifest_stale : int;
      (** manifest lines that fail to verify or name no sound record *)
  manifest_missing : int;  (** sound records absent from the manifest *)
  removed : int;  (** files repair deleted *)
  manifest_rewritten : bool;
}

val scan : ?repair:bool -> Disk.t -> report
(** Never raises; an unreadable file classifies as
    {!Checksum_mismatch}.  Manifest drift is advisory (the object tree
    is the source of truth) and does not make a store unclean, but
    repair compacts it anyway. *)

val clean : report -> bool
(** No unsound files survived: every non-[Sound] entry was removed by
    repair (trivially true for a scan that found only [Sound]
    records). *)

val to_json : report -> string

val pp : Format.formatter -> report -> unit
