type status = Sound | Torn | Checksum_mismatch | Stale_version | Orphan_tmp

let status_to_string = function
  | Sound -> "ok"
  | Torn -> "torn"
  | Checksum_mismatch -> "checksum-mismatch"
  | Stale_version -> "stale-version"
  | Orphan_tmp -> "orphan-tmp"

type entry = {
  path : string;
  key : string option;
  status : status;
  removed : bool;
}

type report = {
  entries : entry list;
  sound : int;
  torn : int;
  checksum_mismatch : int;
  stale_version : int;
  orphan_tmp : int;
  manifest_stale : int;
  manifest_missing : int;
  removed : int;
  manifest_rewritten : bool;
}

let has_suffix ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

(* A record file's name carries its key; the sharding prefix must
   agree or the file was moved by hand and is unfindable. *)
let key_of_rec_path rel =
  let base = Filename.basename rel in
  if not (has_suffix ~suffix:".rec" base) then None
  else
    let key = String.sub base 0 (String.length base - 4) in
    if not (Disk.valid_key key) then None
    else
      let expect =
        Filename.concat
          (Filename.concat (String.sub key 0 2) (String.sub key 2 2))
          base
      in
      if rel = expect then Some key else None

let classify_file store rel =
  if has_suffix ~suffix:".tmp" rel then (None, Orphan_tmp)
  else
    match key_of_rec_path rel with
    | None -> (None, Checksum_mismatch)  (* stray: not ours, not findable *)
    | Some key -> (
        match Io.read_file (Disk.record_path store ~key) with
        | Error _ -> (Some key, Checksum_mismatch)
        | Ok raw -> (
            match Record.decode raw with
            | Ok _ -> (Some key, Sound)
            | Error Record.Torn -> (Some key, Torn)
            | Error Record.Checksum_mismatch -> (Some key, Checksum_mismatch)
            | Error Record.Stale_version -> (Some key, Stale_version)))

let scan ?(repair = false) store =
  let objects = Filename.concat (Disk.dir store) "objects" in
  let sound_keys = ref [] in
  let entries = ref [] in
  let counts = Hashtbl.create 8 in
  let bump st = Hashtbl.replace counts st (1 + Option.value ~default:0 (Hashtbl.find_opt counts st)) in
  List.iter
    (fun rel ->
      let key, status = classify_file store rel in
      bump status;
      match status with
      | Sound -> sound_keys := Option.get key :: !sound_keys
      | _ ->
          let removed =
            repair
            && (Io.remove_if_exists (Filename.concat objects rel);
                not (Sys.file_exists (Filename.concat objects rel)))
          in
          entries := { path = rel; key; status; removed } :: !entries)
    (Io.files_under objects);
  let sound_keys = List.sort compare !sound_keys in
  let sound_set = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace sound_set k ()) sound_keys;
  (* manifest drift: verified lines naming no sound record, plus raw
     lines that fail to unseal at all *)
  let listed = Disk.manifest_keys store in
  let listed_set = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace listed_set k ()) listed;
  let unverifiable_lines =
    match Io.read_file (Disk.manifest_path store) with
    | Error _ -> 0
    | Ok data ->
        List.fold_left
          (fun n line ->
            if line = "" then n
            else
              match Record.unseal_line line with
              | `Sealed k when Disk.valid_key k -> n
              | `Sealed _ | `Mismatch | `Unsealed -> n + 1)
          0
          (String.split_on_char '\n' data)
  in
  let manifest_stale =
    unverifiable_lines
    + List.length (List.filter (fun k -> not (Hashtbl.mem sound_set k)) listed)
  in
  let manifest_missing =
    List.length
      (List.filter (fun k -> not (Hashtbl.mem listed_set k)) sound_keys)
  in
  let manifest_rewritten =
    repair && (manifest_stale > 0 || manifest_missing > 0)
  in
  if manifest_rewritten then Disk.rewrite_manifest store ~keys:sound_keys;
  let entries = List.sort (fun a b -> compare a.path b.path) !entries in
  let count st = Option.value ~default:0 (Hashtbl.find_opt counts st) in
  {
    entries;
    sound = count Sound;
    torn = count Torn;
    checksum_mismatch = count Checksum_mismatch;
    stale_version = count Stale_version;
    orphan_tmp = count Orphan_tmp;
    manifest_stale;
    manifest_missing;
    removed = List.length (List.filter (fun (e : entry) -> e.removed) entries);
    manifest_rewritten;
  }

let clean r = List.for_all (fun (e : entry) -> e.removed) r.entries

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let entry e =
    Printf.sprintf
      "    {\"path\": \"%s\", \"status\": \"%s\", \"removed\": %b}"
      (json_escape e.path)
      (status_to_string e.status)
      e.removed
  in
  String.concat "\n"
    [
      "{";
      Printf.sprintf "  \"ok\": %d," r.sound;
      Printf.sprintf "  \"torn\": %d," r.torn;
      Printf.sprintf "  \"checksum_mismatch\": %d," r.checksum_mismatch;
      Printf.sprintf "  \"stale_version\": %d," r.stale_version;
      Printf.sprintf "  \"orphan_tmp\": %d," r.orphan_tmp;
      Printf.sprintf "  \"manifest_stale\": %d," r.manifest_stale;
      Printf.sprintf "  \"manifest_missing\": %d," r.manifest_missing;
      Printf.sprintf "  \"removed\": %d," r.removed;
      Printf.sprintf "  \"manifest_rewritten\": %b," r.manifest_rewritten;
      Printf.sprintf "  \"clean\": %b," (clean r);
      Printf.sprintf "  \"entries\": [\n%s\n  ]"
        (String.concat ",\n" (List.map entry r.entries));
      "}";
    ]

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "fsck: %d ok, %d torn, %d checksum-mismatch, %d stale-version, %d \
     orphan-tmp@,"
    r.sound r.torn r.checksum_mismatch r.stale_version r.orphan_tmp;
  Format.fprintf ppf "manifest: %d stale, %d missing%s@," r.manifest_stale
    r.manifest_missing
    (if r.manifest_rewritten then " (rewritten)" else "");
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-18s %s%s@,"
        (status_to_string e.status)
        e.path
        (if e.removed then " [removed]" else ""))
    r.entries;
  Format.fprintf ppf "status: %s@]"
    (if clean r then "clean" else "unclean")
