(** Structured spans over {!Trace}.

    [with_span name f] brackets [f] in a B/E event pair.  Within one
    (epoch, slot) spans are well-parenthesized by construction: slot
    execution is sequential and the closing event is emitted via
    [Fun.protect] even when [f] raises.  Zero-cost (no emission, no
    allocation) while tracing is off. *)

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

val instant :
  ?cat:string -> ?args:(string * string) list -> string -> unit
