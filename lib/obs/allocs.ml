(* Span-scoped allocation accounting.

   [Gc.allocated_bytes] (and the minor-words counter) read the calling
   domain's own allocation counters, so a [before]/[after] delta around
   a closure charges exactly what that closure allocated on this
   domain — work it fanned out to other domains is charged on those
   domains by their own [measure] calls.  Folding the deltas into the
   metrics registry (whose counters are themselves per-domain cells
   summed at snapshot) therefore gives the true total across a
   parallel run, and a deterministic workload reports a deterministic
   byte count at any [-j].

   Reading the GC counters allocates nothing and costs a few loads, so
   wrapping a hot path does not perturb what it measures. *)

type t = { bytes : Metrics.counter; minor_words : Metrics.counter; spans : Metrics.counter }

let scope name =
  { bytes = Metrics.counter ("alloc." ^ name ^ ".bytes");
    minor_words = Metrics.counter ("alloc." ^ name ^ ".minor_words");
    spans = Metrics.counter ("alloc." ^ name ^ ".spans") }

let measure t f =
  let bytes0 = Gc.allocated_bytes () in
  let minor0 = Gc.minor_words () in
  let finally () =
    let bytes = Gc.allocated_bytes () -. bytes0 in
    let minor = Gc.minor_words () -. minor0 in
    Metrics.add t.bytes (int_of_float bytes);
    Metrics.add t.minor_words (int_of_float minor);
    Metrics.incr t.spans
  in
  Fun.protect ~finally f

(* One-shot probe for harnesses that want the number, not a metric. *)
let bytes_of f =
  let bytes0 = Gc.allocated_bytes () in
  let r = f () in
  (r, Gc.allocated_bytes () -. bytes0)

(* [allocated_bytes] folds in major-heap and promotion accounting
   whose slicing depends on collector phase, so identical work can
   report deltas that differ by a minor-heap quantum depending on GC
   state at entry.  The minor-words counter alone is a pure count of
   allocation events, independent of when collections run — the right
   probe when a byte count must reproduce across processes (bench
   baselines gated by --compare). *)
let minor_bytes_of f =
  let m0 = Gc.minor_words () in
  let r = f () in
  (r, (Gc.minor_words () -. m0) *. float_of_int (Sys.word_size / 8))
