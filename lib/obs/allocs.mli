(** Span-scoped allocation accounting.

    A scope is a triple of registry counters —
    [alloc.<name>.bytes], [alloc.<name>.minor_words],
    [alloc.<name>.spans] — and {!measure} folds a GC-counter delta
    around a closure into them.  Deltas are per-domain (each domain
    charges its own work), so the snapshot total is exact and
    deterministic for a deterministic workload at any [-j]; the
    counters surface through {!Metrics.snapshot} like any other, so
    [dfsm metrics] reports them with no extra plumbing.

    Measurement allocates nothing on the measured path. *)

type t

val scope : string -> t
(** Register (idempotently) the three [alloc.<name>.*] counters. *)

val measure : t -> (unit -> 'a) -> 'a
(** Run the closure, charging its allocation delta to the scope.  The
    delta is recorded even when the closure raises. *)

val bytes_of : (unit -> 'a) -> 'a * float
(** One-shot probe: the closure's result and its allocated-bytes delta
    on this domain, bypassing the registry (bench harnesses). *)

val minor_bytes_of : (unit -> 'a) -> 'a * float
(** Like {!bytes_of} but counting minor-heap allocation only.
    [Gc.allocated_bytes] mixes in major/promotion accounting whose
    slicing depends on collector phase, so its delta for identical
    work can vary by a minor-heap quantum; the minor-words count is a
    pure, GC-phase-independent event count — use this when the number
    must reproduce exactly across processes (gated bench baselines). *)
