(* Structured tracing on top of Trace: a span is a B/E pair that is
   well-parenthesized within its (epoch, slot) by construction —
   execution inside one slot is sequential, and the E is emitted by
   [Fun.protect] even when the body raises. *)

let with_span ?cat ?args name f =
  if Trace.enabled () then begin
    Trace.emit ~ph:B ?cat ?args name;
    Fun.protect ~finally:(fun () -> Trace.emit ~ph:E ?cat name) f
  end
  else f ()

let instant ?cat ?args name = Trace.emit ~ph:I ?cat ?args name
