(* Deterministic span/event tracing over virtual time.

   The problem: per-domain buffers fill in scheduling order, which
   differs run to run and job count to job count.  The fix is to make
   every event's *position* a pure function of the program, not the
   schedule.  Each event is tagged with a coordinate:

     epoch — a global generation counter bumped by the Par trace hooks
             at every top-level map start and end.  Orchestrator code
             between maps, and the items of each map, therefore live in
             distinct epochs, in program order.
     slot  — the Par item index whose execution emitted the event
             (-1 for the orchestrating domain outside any item).  Set
             by the [on_item] hook; within a slot execution is
             sequential, including nested (degraded) maps.
     seq   — a per-(epoch, slot) emission counter.

   Merging = sorting by (epoch, slot, seq).  None of the three
   components can depend on which domain ran an item or in what order,
   so the merged trace is byte-identical at every [-j] — the qcheck
   property test_obs checks exactly that.  Virtual time is the event's
   rank in the merged order (composable with Resilience.Deadline fuel,
   which spans attach as args).

   Buffers are bounded: a slot keeps its first [cap_per_slot] events
   per epoch and counts the rest as dropped — the cutoff depends only
   on [seq], so drops are deterministic too. *)

type ph = B | E | I

type event = {
  epoch : int;
  slot : int;
  seq : int;
  ph : ph;
  name : string;
  cat : string;
  args : (string * string) list;
  wall_us : int option;  (* only when a wall clock is installed *)
}

let cap_per_slot = 4096

(* ---- global state -------------------------------------------------- *)

let enabled_flag = Atomic.make false
let epoch = Atomic.make 0

(* Epoch value captured by [start]: events record epochs relative to
   it, so a trace's serialization does not depend on how many maps ran
   earlier in the process (byte-identity across repeated in-process
   runs, not just across job counts). *)
let epoch_base = Atomic.make 0

let wall_clock : (unit -> float) option ref = ref None
let wall_t0 = ref 0.0

type dbuf = {
  mutable events : event list;  (* newest first *)
  mutable cur_epoch : int;
  mutable cur_slot : int;
  mutable seq : int;
  mutable dropped : int;
}

let lock = Mutex.create ()
let bufs : dbuf list ref = ref []

let dls : dbuf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let d =
        { events = []; cur_epoch = -1; cur_slot = -1; seq = 0; dropped = 0 }
      in
      Mutex.lock lock;
      bufs := d :: !bufs;
      Mutex.unlock lock;
      d)

let enabled () = Atomic.get enabled_flag

(* ---- emission ------------------------------------------------------ *)

let emit ~ph ?(cat = "") ?(args = []) name =
  if Atomic.get enabled_flag then begin
    let d = Domain.DLS.get dls in
    let ep = Atomic.get epoch in
    if d.cur_epoch <> ep then begin
      d.cur_epoch <- ep;
      d.seq <- 0
    end;
    if d.seq >= cap_per_slot then d.dropped <- d.dropped + 1
    else begin
      let wall_us =
        match !wall_clock with
        | None -> None
        | Some clock -> Some (int_of_float ((clock () -. !wall_t0) *. 1e6))
      in
      d.events <-
        { epoch = ep - Atomic.get epoch_base; slot = d.cur_slot; seq = d.seq;
          ph; name; cat; args; wall_us }
        :: d.events;
      d.seq <- d.seq + 1
    end
  end

(* ---- Par hooks ----------------------------------------------------- *)

(* Installed once, at module initialization; active whether or not
   tracing is on — the epoch/slot bookkeeping must already be in place
   the moment [start] flips the flag, and the batch-shape metrics are
   always-on. *)

let m_maps = Metrics.counter "par.maps"
let m_items = Metrics.counter "par.items"
let h_batch = Metrics.histogram "par.map.items"
let g_occupancy = Metrics.gauge "par.queue.occupancy"

let () =
  Par.set_trace_hooks
    {
      on_map_start =
        (fun ~total ->
          Metrics.incr m_maps;
          Metrics.observe h_batch total;
          Metrics.observe_gauge g_occupancy total;
          ignore (Atomic.fetch_and_add epoch 1);
          emit ~ph:I ~cat:"par"
            ~args:[ ("items", string_of_int total) ]
            "par.map");
      on_item =
        (fun i ->
          Metrics.incr m_items;
          let d = Domain.DLS.get dls in
          d.cur_slot <- i;
          d.cur_epoch <- Atomic.get epoch;
          d.seq <- 0);
      on_map_end =
        (fun () ->
          let d = Domain.DLS.get dls in
          d.cur_slot <- -1;
          ignore (Atomic.fetch_and_add epoch 1));
    }

(* ---- lifecycle ----------------------------------------------------- *)

let clear_locked () =
  List.iter
    (fun d ->
      d.events <- [];
      d.dropped <- 0;
      d.seq <- 0;
      d.cur_epoch <- -1)
    !bufs

let start () =
  Mutex.lock lock;
  clear_locked ();
  Mutex.unlock lock;
  (match !wall_clock with
  | Some clock -> wall_t0 := clock ()
  | None -> ());
  Atomic.set epoch_base (Atomic.get epoch);
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false

let set_wall_clock c = wall_clock := c

let compare_event a b =
  let c = compare a.epoch b.epoch in
  if c <> 0 then c
  else
    let c = compare a.slot b.slot in
    if c <> 0 then c else compare a.seq b.seq

let drain () =
  Atomic.set enabled_flag false;
  Mutex.lock lock;
  let all = List.concat_map (fun d -> d.events) !bufs in
  clear_locked ();
  Mutex.unlock lock;
  List.sort compare_event all

let dropped () =
  Mutex.lock lock;
  let n = List.fold_left (fun acc d -> acc + d.dropped) 0 !bufs in
  Mutex.unlock lock;
  n

(* ---- exporters ----------------------------------------------------- *)

let ph_to_string = function B -> "B" | E -> "E" | I -> "i"

let args_json args =
  args
  |> List.map (fun (k, v) ->
         Printf.sprintf "\"%s\":\"%s\"" (Metrics.json_escape k)
           (Metrics.json_escape v))
  |> String.concat ","

let event_json ~vt e =
  let wall =
    match e.wall_us with
    | None -> ""
    | Some us -> Printf.sprintf ",\"wall_us\":%d" us
  in
  Printf.sprintf
    "{\"vt\":%d,\"epoch\":%d,\"slot\":%d,\"seq\":%d,\"ph\":\"%s\",\"name\":\"%s\",\"cat\":\"%s\",\"args\":{%s}%s}"
    vt e.epoch e.slot e.seq (ph_to_string e.ph)
    (Metrics.json_escape e.name)
    (Metrics.json_escape e.cat)
    (args_json e.args) wall

let to_jsonl events =
  let b = Buffer.create 4096 in
  List.iteri
    (fun vt e ->
      Buffer.add_string b (event_json ~vt e);
      Buffer.add_char b '\n')
    events;
  Buffer.contents b

(* Chrome about:tracing / Perfetto.  ts is virtual time (the event's
   merged rank, displayed as microseconds); tid maps slot -1 -> 0 so
   the orchestrator renders as the first track. *)
let to_chrome events =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun vt e ->
      if vt > 0 then Buffer.add_char b ',';
      let a = args_json e.args in
      let wall =
        match e.wall_us with
        | None -> ""
        | Some us ->
            (if a = "" then "" else ",") ^ Printf.sprintf "\"wall_us\":%d" us
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%d,\"pid\":0,\"tid\":%d,\"args\":{%s%s}}"
           (Metrics.json_escape e.name)
           (Metrics.json_escape (if e.cat = "" then "app" else e.cat))
           (ph_to_string e.ph) vt (e.slot + 1) a wall))
    events;
  Buffer.add_string b "]}";
  Buffer.contents b
