(** Deterministic event tracing over virtual time.

    Every event is tagged with a coordinate [(epoch, slot, seq)] that
    is a pure function of the program, never of the schedule: [epoch]
    is a global generation bumped by the {!Par} trace hooks at every
    top-level map boundary (recorded relative to {!start}, so repeated
    in-process runs of one workload serialize identically), [slot] is the Par item index that emitted
    the event ([-1] for the orchestrating domain), and [seq] counts
    emissions within an (epoch, slot).  {!drain} merges the per-domain
    ring buffers by sorting on that coordinate and assigns each event
    its merged rank as virtual time — so the serialized trace for a
    given seed is byte-identical at every [-j].

    Buffers are bounded to {!cap_per_slot} events per (epoch, slot);
    the cutoff depends only on [seq], so drops are deterministic. *)

type ph = B | E | I  (** span begin / span end / instant *)

type event = {
  epoch : int;
  slot : int;
  seq : int;
  ph : ph;
  name : string;
  cat : string;
  args : (string * string) list;
  wall_us : int option;
      (** wall-clock annotation, only when {!set_wall_clock} installed
          one (breaks byte-identity; bench-only) *)
}

val cap_per_slot : int

val enabled : unit -> bool

val start : unit -> unit
(** Clear all buffers and begin recording. *)

val stop : unit -> unit

val emit :
  ph:ph -> ?cat:string -> ?args:(string * string) list -> string -> unit
(** Record one event in the calling domain's buffer.  No-op while
    tracing is off.  Prefer {!Span.with_span} / {!Span.instant}. *)

val drain : unit -> event list
(** Stop recording, merge every domain's buffer into the deterministic
    order, and clear the buffers. *)

val dropped : unit -> int
(** Events discarded by the per-slot cap since {!start}. *)

val set_wall_clock : (unit -> float) option -> unit
(** Install a wall clock (e.g. [Unix.gettimeofday]); subsequent events
    carry a [wall_us] annotation relative to {!start}.  [None]
    restores pure virtual time. *)

val to_jsonl : event list -> string
(** One JSON object per line, [vt] = merged rank. *)

val to_chrome : event list -> string
(** Chrome [trace_event] JSON ([{"traceEvents": [...]}]); [ts] is
    virtual time, [tid] is [slot + 1]. *)
