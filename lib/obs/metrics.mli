(** Process-wide metrics registry: counters, gauges, histograms.

    Hot-path updates are unsynchronized writes to domain-local cells
    ([Domain.DLS]); a {!snapshot} folds the per-domain cells together —
    counters and histograms sum, gauges keep the high-water mark.
    Totals are deterministic for a deterministic workload; the
    per-domain split is not (chunks land on whichever worker grabs
    them), which is why traces never embed live metric reads.

    Registration is idempotent: [counter "x"] in two libraries returns
    the same metric.
    @raise Invalid_argument when a name is re-registered with a
    different kind. *)

type counter
type gauge
type histogram

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit

val gauge : string -> gauge

val observe_gauge : gauge -> int -> unit
(** Record a level; the snapshot reports the maximum ever observed. *)

val histogram : string -> histogram

val observe : histogram -> int -> unit
(** Record one observation into power-of-two buckets (bucket [i] holds
    values with [i] significant bits; bucket 0 holds values [<= 0]). *)

type value =
  | Counter_v of int
  | Gauge_v of int  (** high-water mark *)
  | Histogram_v of {
      count : int;
      sum : int;
      max : int;
      buckets : (int * int) list;  (** (bucket index, count), non-empty only *)
    }

type snapshot = (string * value) list
(** Sorted by metric name. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every cell of every metric (the registry itself persists).
    Harnesses whose output embeds metric totals run this first so
    consecutive invocations report identical numbers. *)

val to_json : snapshot -> string

val pp : Format.formatter -> snapshot -> unit

(** {2 Test hooks} *)

val counter_value : counter -> int
(** Folded total of one counter (0 for other kinds). *)

val per_domain_counts : counter -> int list
(** The raw per-domain cells, unsummed — the snapshot total must equal
    their sum. *)

val json_escape : string -> string
(** JSON string-body escaping shared by the exporters. *)
