(* Process-wide metrics registry.

   Each metric owns one cell per domain (a [Domain.DLS] slot), so the
   hot path — a counter bump inside a pool worker — is an unsynchronized
   write to domain-local memory.  The cells are enrolled in a global
   per-metric list the first time a domain touches the metric, and a
   [snapshot] folds them together under the registry lock: counters and
   histograms sum, gauges keep the high-water mark.  Metrics are
   intentionally *not* part of the determinism contract event-by-event —
   only their totals are (a chunk of items lands on whichever worker
   grabs it first) — which is why traces never embed live metric
   reads. *)

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* ---- cells --------------------------------------------------------- *)

(* [n]: counter count / gauge high-water / histogram observation count.
   [sum] and [vmax] are histogram-only.  Buckets are powers of two:
   bucket [i] holds observations with [i] significant bits, i.e. values
   in [2^(i-1), 2^i - 1]; bucket 0 holds values <= 0. *)
type cell = {
  mutable n : int;
  mutable sum : int;
  mutable vmax : int;
  buckets : int array;
}

let bucket_count = 63

let new_cell () = { n = 0; sum = 0; vmax = 0; buckets = Array.make bucket_count 0 }

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    min !b (bucket_count - 1)
  end

(* ---- metrics ------------------------------------------------------- *)

type kind = Counter | Gauge | Histogram

type metric = {
  name : string;
  kind : kind;
  cells : cell list ref;      (* under [lock] *)
  key : cell Domain.DLS.key;
}

type counter = metric
type gauge = metric
type histogram = metric

(* name -> metric, under [lock]; creation is idempotent so module-level
   [let m = counter "x"] in two libraries shares one metric. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let make kind name =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m ->
      if m.kind <> kind then
        invalid_arg
          (Printf.sprintf "Obs.Metrics: %S already registered with another kind"
             name);
      m
  | None ->
      let cells = ref [] in
      let key =
        Domain.DLS.new_key (fun () ->
            let c = new_cell () in
            Mutex.lock lock;
            cells := c :: !cells;
            Mutex.unlock lock;
            c)
      in
      let m = { name; kind; cells; key } in
      Hashtbl.add registry name m;
      m

(* The DLS init of a cell locks the registry; [make] holds it.  Safe
   because [make] never touches DLS — cells materialize lazily on the
   first [incr]/[observe] from each domain, outside [make]. *)

let counter name = make Counter name
let gauge name = make Gauge name
let histogram name = make Histogram name

let cell_of m = Domain.DLS.get m.key

let add m v =
  let c = cell_of m in
  c.n <- c.n + v

let incr m = add m 1

let observe_gauge m v =
  let c = cell_of m in
  if v > c.n then c.n <- v

let observe m v =
  let c = cell_of m in
  c.n <- c.n + 1;
  c.sum <- c.sum + v;
  if v > c.vmax then c.vmax <- v;
  let b = bucket_of v in
  c.buckets.(b) <- c.buckets.(b) + 1

(* ---- snapshots ----------------------------------------------------- *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { count : int; sum : int; max : int; buckets : (int * int) list }

type snapshot = (string * value) list

let fold_metric m =
  let cells = !(m.cells) in
  match m.kind with
  | Counter -> Counter_v (List.fold_left (fun acc c -> acc + c.n) 0 cells)
  | Gauge -> Gauge_v (List.fold_left (fun acc c -> max acc c.n) 0 cells)
  | Histogram ->
      let count = List.fold_left (fun acc c -> acc + c.n) 0 cells in
      let sum = List.fold_left (fun acc c -> acc + c.sum) 0 cells in
      let vmax = List.fold_left (fun acc c -> max acc c.vmax) 0 cells in
      let buckets =
        List.init bucket_count (fun i ->
            (i, List.fold_left (fun acc c -> acc + c.buckets.(i)) 0 cells))
        |> List.filter (fun (_, n) -> n > 0)
      in
      Histogram_v { count; sum; max = vmax; buckets }

let snapshot () =
  locked @@ fun () ->
  Hashtbl.fold (fun _ m acc -> (m.name, fold_metric m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      List.iter
        (fun c ->
          c.n <- 0;
          c.sum <- 0;
          c.vmax <- 0;
          Array.fill c.buckets 0 bucket_count 0)
        !(m.cells))
    registry

(* test hooks *)
let counter_value m = match fold_metric m with Counter_v n -> n | _ -> 0
let per_domain_counts m = locked (fun () -> List.map (fun c -> c.n) !(m.cells))

(* ---- rendering ----------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_to_json = function
  | Counter_v n -> string_of_int n
  | Gauge_v n -> string_of_int n
  | Histogram_v { count; sum; max; buckets } ->
      let bs =
        buckets
        |> List.map (fun (i, n) -> Printf.sprintf "\"%d\":%d" i n)
        |> String.concat ","
      in
      Printf.sprintf "{\"count\":%d,\"sum\":%d,\"max\":%d,\"buckets\":{%s}}"
        count sum max bs

let to_json snap =
  let entries =
    snap
    |> List.map (fun (name, v) ->
           Printf.sprintf "  \"%s\": %s" (json_escape name) (value_to_json v))
    |> String.concat ",\n"
  in
  "{\n" ^ entries ^ "\n}"

let pp ppf snap =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v n -> Format.fprintf ppf "%-40s %d@." name n
      | Gauge_v n -> Format.fprintf ppf "%-40s %d (high-water)@." name n
      | Histogram_v { count; sum; max; _ } ->
          Format.fprintf ppf "%-40s count=%d sum=%d max=%d@." name count sum max)
    snap
