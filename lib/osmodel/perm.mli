(** UNIX permission modes (owner/other read-write bits; the studied
    vulnerabilities never hinge on group or execute bits). *)

type t

val make : owner_read:bool -> owner_write:bool -> other_read:bool -> other_write:bool -> t

val of_octal : int -> t
(** Interpret the usual octal notation, e.g. [0o644], [0o666]. *)

val to_octal : t -> int

val can_read : t -> owner:User.t -> as_user:User.t -> bool

val can_write : t -> owner:User.t -> as_user:User.t -> bool
(** Root bypasses permission bits, as on a real system. *)

val world_writable : t -> bool

val pp : Format.formatter -> t -> unit
