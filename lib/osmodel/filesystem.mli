(** In-memory UNIX filesystem with symlinks, ownership and permission
    bits — the substrate of the xterm race (Figure 5) and rwall
    (Figure 6) models.

    Paths are absolute strings; [".."] components are normalised
    during resolution, so a [/dev]-relative utmp entry such as
    ["../etc/passwd"] resolves exactly as it did on the vulnerable
    Solaris systems. *)

type t

type kind = Regular_file | Terminal

type error =
  | Not_found_ of string
  | Permission_denied of string
  | Too_many_links of string
  | Already_exists of string

exception Fs_error of error

val error_message : error -> string

val create : unit -> t

val mkfile :
  t -> string -> owner:User.t -> mode:Perm.t -> ?kind:kind -> string -> unit
(** [mkfile t path ~owner ~mode content] — create (or refuse to
    overwrite) a file node. *)

val symlink : t -> link:string -> target:string -> unit
(** Create a symbolic link; the target need not exist. *)

val unlink : t -> string -> as_user:User.t -> unit
(** Remove the node itself (does not follow symlinks). *)

val exists : t -> string -> bool

val is_symlink : t -> string -> bool

val resolve : t -> ?cwd:string -> string -> string
(** Canonical target path after normalising [".."] and following
    symlink chains (depth-limited). *)

val kind_of : t -> string -> kind
(** Kind of the resolved node; raises {!Fs_error} if absent. *)

val owner_of : t -> string -> User.t

val mode_of : t -> string -> Perm.t

val chmod : t -> string -> Perm.t -> unit

val access_write : t -> string -> as_user:User.t -> bool
(** The {e check} half of check-then-use: would a write open succeed
    right now?  Follows symlinks, returns false when absent. *)

type fd

val open_write : t -> ?cwd:string -> string -> as_user:User.t -> fd
(** The {e use} half: resolve (following any symlink present {e at
    this moment}) and open for writing, enforcing permissions on the
    resolved target.  Missing files are created owned by [as_user]. *)

val fd_path : fd -> string
(** The resolved path the descriptor actually designates. *)

val write : t -> fd -> string -> unit
(** Replace content. *)

val append : t -> fd -> string -> unit

val read : t -> string -> as_user:User.t -> string
(** Read a file's content (follows symlinks, checks read access). *)

val content : t -> string -> string
(** Raw content by resolved path, no permission check (for tests). *)

val paths : t -> string list
