type t = { owner_read : bool; owner_write : bool; other_read : bool; other_write : bool }

let make ~owner_read ~owner_write ~other_read ~other_write =
  { owner_read; owner_write; other_read; other_write }

let of_octal mode =
  { owner_read = mode land 0o400 <> 0;
    owner_write = mode land 0o200 <> 0;
    other_read = mode land 0o004 <> 0;
    other_write = mode land 0o002 <> 0 }

let to_octal t =
  (if t.owner_read then 0o400 else 0)
  lor (if t.owner_write then 0o200 else 0)
  lor (if t.other_read then 0o004 else 0)
  lor (if t.other_write then 0o002 else 0)

let can_read t ~owner ~as_user =
  User.is_root as_user
  || (if User.equal owner as_user then t.owner_read else t.other_read)

let can_write t ~owner ~as_user =
  User.is_root as_user
  || (if User.equal owner as_user then t.owner_write else t.other_write)

let world_writable t = t.other_write

let pp ppf t = Format.fprintf ppf "0o%03o" (to_octal t)
