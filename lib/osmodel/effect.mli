(** Static effect footprints for scheduler steps.

    Every {!Scheduler.step} may declare the set of objects it reads and
    mutates — filesystem paths (content and attributes kept as separate
    objects for the {e detector}, conflated for the {e conflict
    relation}), the socket stream, uids, and named memory objects.
    Footprints are over-approximations: a step's declared footprint
    must contain every access the step can dynamically perform on any
    schedule (checked by the footprint-soundness harness in
    [test_racecheck]).

    Two footprints that share no conflicting pair commute in every
    state, which makes {!independent} a sound independence relation for
    partial-order reduction, and makes check/use pairs over [Path_attr]
    objects statically scannable for TOCTTOU windows. *)

type obj =
  | Path of string  (** a file's content, keyed by normalised path *)
  | Path_attr of string
      (** a path's metadata: existence, kind, mode, owner, binding *)
  | Socket_stream  (** the modelled network stream *)
  | Uid of string  (** a user identity *)
  | Mem of string  (** a named memory object (stack frame, buffer) *)

type action = Reads | Writes | Creates | Unlinks | Chmods

type t = { action : action; obj : obj }

val reads : obj -> t
val writes : obj -> t
val creates : obj -> t
val unlinks : obj -> t
val chmods : obj -> t

val write_like : action -> bool
(** Everything but [Reads]. *)

val key : t -> string
(** The conflict key.  [Path p] and [Path_attr p] share the key
    ["path:" ^ p]: unlink/relink changes both the binding and what a
    stat returns, so separating them would be unsound. *)

val obj_name : t -> string
(** Display name of the object (the bare path for both path objects). *)

val same_object : t -> t -> bool

val conflicts : t -> t -> bool
(** Same key and at least one side write-like. *)

val independent : t list -> t list -> bool
(** No conflicting pair across the two footprints.  Footprint-disjoint
    steps commute in every state — the independence relation handed to
    {!Scheduler.explore_n} for sleep-set reduction. *)

val covers : t -> t -> bool
(** [covers footprint_entry access] — a read access is covered by any
    entry on its key; a write-like access needs a write-like entry. *)

val covered_by : t -> t list -> bool
(** [covered_by access footprint] — some entry {!covers} the access. *)

val action_to_string : action -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {2 Dynamic-access observer}

    The soundness harness installs an observer for the extent of one
    step; the osmodel primitives ({!Filesystem}, {!Socket}) record each
    access they perform.  Single-domain only; with no observer
    installed, {!record} is free. *)

val record : t -> unit

val with_observer : (t -> unit) -> (unit -> 'a) -> 'a
