(** Users of the simulated UNIX system. *)

type t = Root | Regular of string

val equal : t -> t -> bool

val is_root : t -> bool

val name : t -> string

val pp : Format.formatter -> t -> unit
