type t = Root | Regular of string

let equal a b =
  match a, b with
  | Root, Root -> true
  | Regular x, Regular y -> String.equal x y
  | Root, Regular _ | Regular _, Root -> false

let is_root = function Root -> true | Regular _ -> false

let name = function Root -> "root" | Regular n -> n

let pp ppf u = Format.pp_print_string ppf (name u)
