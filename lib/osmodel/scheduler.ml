type 'st step = { label : string; run : 'st -> unit }

let step label run = { label; run }

(* Lazy enumeration of the merges, in the same order the eager list
   version produced: all merges starting with [x] before all merges
   starting with [y]. *)
let rec merge_seq xs ys () =
  match xs, ys with
  | [], _ -> Seq.Cons (ys, Seq.empty)
  | _, [] -> Seq.Cons (xs, Seq.empty)
  | x :: xs', y :: ys' ->
      Seq.append
        (Seq.map (fun rest -> x :: rest) (merge_seq xs' ys))
        (Seq.map (fun rest -> y :: rest) (merge_seq xs ys'))
        ()

let interleavings_seq xs ys = merge_seq xs ys

let interleavings xs ys = List.of_seq (merge_seq xs ys)

(* C(n+m, n), multiplicatively.  [acc] is C(big+i-1, i-1) before step
   [i], so [acc * (big+i) / i] divides exactly; computing it as
   [q*(big+i) + r*(big+i)/i] with q = acc/i, r = acc mod i keeps every
   intermediate at most as large as the true value, which lets us
   saturate to [max_int] exactly when the true count overflows. *)
let binom_step acc ~i ~mi =
  let q = acc / i and r = acc mod i in
  if (q <> 0 && mi > max_int / q) || (r <> 0 && mi > max_int / r) then max_int
  else
    let a = q * mi and b = r * mi / i in
    if a > max_int - b then max_int else a + b

let interleaving_count n m =
  if n < 0 || m < 0 then invalid_arg "Scheduler.interleaving_count: negative length";
  let k = min n m and big = max n m in
  if k = 0 then 1
  else if big > max_int - k then max_int
  else
    let rec go acc i =
      if i > k then acc else go (binom_step acc ~i ~mi:(big + i)) (i + 1)
    in
    go 1 1

type 'r verdict = { schedule : string list; result : 'r }

type 'r exploration = { verdicts : 'r verdict list; coverage : Fault.Budget.coverage }

(* The scheduler's own fault seam: a perturbed schedule drops or
   replays one step before running. *)
let perturb steps =
  match Fault.Hooks.schedule_mutation ~steps:(List.length steps) with
  | None -> steps
  | Some (Fault.Injector.Drop_step i) -> List.filteri (fun j _ -> j <> i) steps
  | Some (Fault.Injector.Dup_step i) ->
      List.concat (List.mapi (fun j s -> if j = i then [ s; s ] else [ s ]) steps)

let run_schedules_seq ?budget ~init ~check ~total schedules =
  let budget = match budget with Some b -> b | None -> Fault.Budget.unlimited () in
  let covered = ref 0 in
  let verdicts = ref [] in
  let rec go seq =
    match seq () with
    | Seq.Nil -> ()
    | Seq.Cons (steps, rest) ->
        if Fault.Budget.take budget then begin
          incr covered;
          let steps = perturb steps in
          let st = init () in
          let ran =
            List.map
              (fun s ->
                 (try s.run st with _ -> ());
                 s.label)
              steps
          in
          (match check st with
           | Some result -> verdicts := { schedule = ran; result } :: !verdicts
           | None -> ());
          go rest
        end
  in
  go schedules;
  { verdicts = List.rev !verdicts;
    coverage = Fault.Budget.coverage ~covered:!covered ~total }

let explore ?budget ~init ~a ~b ~check () =
  run_schedules_seq ?budget ~init ~check
    ~total:(interleaving_count (List.length a) (List.length b))
    (interleavings_seq a b)

(* Pick the head of any non-empty sequence as the next step, recurse. *)
let rec merge_all_seq seqs () =
  let seqs = List.filter (fun s -> s <> []) seqs in
  if seqs = [] then Seq.Cons ([], Seq.empty)
  else
    Seq.concat
      (List.to_seq
         (List.mapi
            (fun i seq ->
               match seq with
               | [] -> Seq.empty
               | head :: tail ->
                   let rest =
                     List.mapi (fun j s -> if j = i then tail else s) seqs
                   in
                   Seq.map (fun m -> head :: m) (merge_all_seq rest))
            seqs))
      ()

let interleavings_n_seq seqs = merge_all_seq seqs

let interleavings_n seqs = List.of_seq (merge_all_seq seqs)

let mul_sat a b = if a <> 0 && b > max_int / a then max_int else a * b

let interleaving_count_n lengths =
  (* multiply (n_prefix + k choose k) over the sequences *)
  let rec go acc consumed = function
    | [] -> acc
    | n :: rest -> go (mul_sat acc (interleaving_count n consumed)) (consumed + n) rest
  in
  go 1 0 lengths

let explore_n ?budget ~init ~procs ~check () =
  run_schedules_seq ?budget ~init ~check
    ~total:(interleaving_count_n (List.map List.length procs))
    (interleavings_n_seq procs)
