type 'st step = { label : string; effects : Effect.t list; run : 'st -> unit }

let step label run = { label; effects = []; run }

let step_e label ~effects run = { label; effects; run }

(* Lazy enumeration of the merges, in the same order the eager list
   version produced: all merges starting with [x] before all merges
   starting with [y]. *)
let rec merge_seq xs ys () =
  match xs, ys with
  | [], _ -> Seq.Cons (ys, Seq.empty)
  | _, [] -> Seq.Cons (xs, Seq.empty)
  | x :: xs', y :: ys' ->
      Seq.append
        (Seq.map (fun rest -> x :: rest) (merge_seq xs' ys))
        (Seq.map (fun rest -> y :: rest) (merge_seq xs ys'))
        ()

let interleavings_seq xs ys = merge_seq xs ys

let interleavings xs ys = List.of_seq (merge_seq xs ys)

(* C(n+m, n), multiplicatively.  [acc] is C(big+i-1, i-1) before step
   [i], so [acc * (big+i) / i] divides exactly; computing it as
   [q*(big+i) + r*(big+i)/i] with q = acc/i, r = acc mod i keeps every
   intermediate at most as large as the true value, which lets us
   saturate to [max_int] exactly when the true count overflows. *)
let binom_step acc ~i ~mi =
  let q = acc / i and r = acc mod i in
  if (q <> 0 && mi > max_int / q) || (r <> 0 && mi > max_int / r) then max_int
  else
    let a = q * mi and b = r * mi / i in
    if a > max_int - b then max_int else a + b

let interleaving_count n m =
  if n < 0 || m < 0 then invalid_arg "Scheduler.interleaving_count: negative length";
  let k = min n m and big = max n m in
  if k = 0 then 1
  else if big > max_int - k then max_int
  else
    let rec go acc i =
      if i > k then acc else go (binom_step acc ~i ~mi:(big + i)) (i + 1)
    in
    go 1 1

type 'r verdict = { schedule : string list; result : 'r }

type 'r exploration = {
  verdicts : 'r verdict list;
  coverage : Fault.Budget.coverage;
  explored : int;
}

(* The scheduler's own fault seam: a perturbed schedule drops or
   replays one step before running. *)
let perturb steps =
  match Fault.Hooks.schedule_mutation ~steps:(List.length steps) with
  | None -> steps
  | Some (Fault.Injector.Drop_step i) -> List.filteri (fun j _ -> j <> i) steps
  | Some (Fault.Injector.Dup_step i) ->
      List.concat (List.mapi (fun j s -> if j = i then [ s; s ] else [ s ]) steps)

let run_allocs = Obs.Allocs.scope "scheduler.run"

let run_schedules ?budget ~init ~check ~total schedules =
  Obs.Allocs.measure run_allocs @@ fun () ->
  let budget = match budget with Some b -> b | None -> Fault.Budget.unlimited () in
  let covered = ref 0 in
  let verdicts = ref [] in
  (* [drained] distinguishes "enumerated every schedule" from "the
     budget stopped us": under partial-order reduction the number of
     schedules run is below [total] even when coverage is complete. *)
  let rec go seq =
    match seq () with
    | Seq.Nil -> true
    | Seq.Cons (steps, rest) ->
        if Fault.Budget.take budget then begin
          incr covered;
          let steps = perturb steps in
          let st = init () in
          let ran =
            List.map
              (fun s ->
                 (* A failed syscall does not stop the attacker: the
                    osmodel's typed errors are no-ops for that step.
                    Programming errors (Invalid_argument, Failure, ...)
                    propagate — swallowing them hid real bugs. *)
                 (try s.run st with
                  | Filesystem.Fs_error _ | Fault.Condition.Simulated _ -> ());
                 s.label)
              steps
          in
          (match check st with
           | Some result -> verdicts := { schedule = ran; result } :: !verdicts
           | None -> ());
          go rest
        end
        else false
  in
  let drained = go schedules in
  { verdicts = List.rev !verdicts;
    explored = !covered;
    coverage =
      (if drained then Fault.Budget.Complete
       else Fault.Budget.coverage ~covered:!covered ~total) }

(* ---- sleep-set partial-order reduction ---------------------------- *)

(* Godefroid-style sleep sets over the tree of remaining suffixes.  A
   "transition" is the head step of one process; the state space is
   acyclic (every step consumes one element of one suffix), for which
   sleep sets alone preserve every terminal state: each Mazurkiewicz
   trace keeps at least one representative, so any property of the
   final state ([check]) is decided exactly as under full enumeration.

   At a node, transitions are explored in process order; exploring
   process [i] passes the child the sleep set
     { j in sleep ∪ explored-before-i | step_j independent of step_i }
   and a node whose enabled transitions are all asleep emits nothing —
   its schedules are permutations of branches already explored.

   [schedules_por_ref] is the original list-of-int representation of
   the sleep and explored sets, kept as the executable specification:
   the production [schedules_por] packs both sets into int bitmasks
   (membership = one [land], union = one [lor], per-branch allocation
   zero) and must stay schedule-for-schedule identical to it — the
   differential qcheck property and the bench before/after leg both
   run the two side by side. *)
let schedules_por_ref ~independent procs =
  let procs = Array.of_list (List.filter (fun p -> p <> []) procs) in
  let n = Array.length procs in
  let indices = List.init n Fun.id in
  let rec go rem sleep () =
    let enabled = List.filter (fun i -> rem.(i) <> []) indices in
    if enabled = [] then Seq.Cons ([], Seq.empty)
    else begin
      let rec branches explored = function
        | [] -> Seq.Nil
        | i :: rest when List.mem i sleep -> branches explored rest
        | i :: rest ->
            let s = List.hd rem.(i) in
            let rem' = Array.copy rem in
            rem'.(i) <- List.tl rem.(i);
            let child_sleep =
              List.filter
                (fun j -> independent (List.hd rem.(j)).effects s.effects)
                (sleep @ List.rev explored)
            in
            Seq.append
              (Seq.map (fun sched -> s :: sched) (go rem' child_sleep))
              (fun () -> branches (i :: explored) rest)
              ()
      in
      branches [] enabled
    end
  in
  go procs []

(* Bitmask variant: process indices are bit positions, so the sleep
   set, the explored-before-i set and the enabled set are each one
   immediate int.  Branch order (ascending process index) and the
   sleep-set recurrence are exactly [schedules_por_ref]'s, so the
   emitted schedule sequence is identical element for element; only
   the per-node set bookkeeping changes (no list cells, no [@],
   no [List.mem] scans on the hot path).  More processes than bits in
   an int would need wider masks; no model comes close, so that case
   falls back to the reference implementation rather than carrying
   dead multi-word code. *)
let schedules_por ~independent procs =
  let arr = Array.of_list (List.filter (fun p -> p <> []) procs) in
  let n = Array.length arr in
  if n > Sys.int_size - 1 then schedules_por_ref ~independent procs
  else
    let rec go rem sleep () =
      let enabled = ref 0 in
      for i = n - 1 downto 0 do
        if rem.(i) <> [] then enabled := !enabled lor (1 lsl i)
      done;
      if !enabled = 0 then Seq.Cons ([], Seq.empty)
      else begin
        let enabled = !enabled in
        (* [explored] holds the awake branches already taken at this
           node (bits below [i] only, by construction of the scan) *)
        let rec branches explored i =
          if i >= n then Seq.Nil
          else if enabled land (1 lsl i) = 0 || sleep land (1 lsl i) <> 0
          then branches explored (i + 1)
          else begin
            let s = List.hd rem.(i) in
            let rem' = Array.copy rem in
            rem'.(i) <- List.tl rem.(i);
            let candidates = sleep lor explored in
            let child_sleep = ref 0 in
            for j = 0 to n - 1 do
              if
                candidates land (1 lsl j) <> 0
                && independent (List.hd rem.(j)).effects s.effects
              then child_sleep := !child_sleep lor (1 lsl j)
            done;
            Seq.append
              (Seq.map (fun sched -> s :: sched) (go rem' !child_sleep))
              (fun () -> branches (explored lor (1 lsl i)) (i + 1))
              ()
          end
        in
        branches 0 0
      end
    in
    go arr 0

(* Pick the head of any non-empty sequence as the next step, recurse. *)
let rec merge_all_seq seqs () =
  let seqs = List.filter (fun s -> s <> []) seqs in
  if seqs = [] then Seq.Cons ([], Seq.empty)
  else
    Seq.concat
      (List.to_seq
         (List.mapi
            (fun i seq ->
               match seq with
               | [] -> Seq.empty
               | head :: tail ->
                   let rest =
                     List.mapi (fun j s -> if j = i then tail else s) seqs
                   in
                   Seq.map (fun m -> head :: m) (merge_all_seq rest))
            seqs))
      ()

let interleavings_n_seq seqs = merge_all_seq seqs

let interleavings_n seqs = List.of_seq (merge_all_seq seqs)

let schedules_n ?independent procs =
  match independent with
  | None -> interleavings_n_seq procs
  | Some indep -> schedules_por ~independent:indep procs

let mul_sat a b = if a <> 0 && b > max_int / a then max_int else a * b

let interleaving_count_n lengths =
  (* multiply (n_prefix + k choose k) over the sequences *)
  let rec go acc consumed = function
    | [] -> acc
    | n :: rest -> go (mul_sat acc (interleaving_count n consumed)) (consumed + n) rest
  in
  go 1 0 lengths

let por_pruned = lazy (Obs.Metrics.counter "scheduler.por_pruned")

let record_pruning ~independent ~total exploration =
  (if independent <> None && total < max_int
      && Fault.Budget.complete exploration.coverage then
     Obs.Metrics.add (Lazy.force por_pruned) (total - exploration.explored));
  exploration

let explore ?budget ?independent ~init ~a ~b ~check () =
  let total = interleaving_count (List.length a) (List.length b) in
  let schedules =
    match independent with
    | None -> interleavings_seq a b
    | Some indep -> schedules_por ~independent:indep [ a; b ]
  in
  record_pruning ~independent ~total
    (run_schedules ?budget ~init ~check ~total schedules)

let explore_n ?budget ?independent ~init ~procs ~check () =
  let total = interleaving_count_n (List.map List.length procs) in
  record_pruning ~independent ~total
    (run_schedules ?budget ~init ~check ~total (schedules_n ?independent procs))
