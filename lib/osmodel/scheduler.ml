type 'st step = { label : string; run : 'st -> unit }

let step label run = { label; run }

let interleavings xs ys =
  let rec merge xs ys =
    match xs, ys with
    | [], _ -> [ ys ]
    | _, [] -> [ xs ]
    | x :: xs', y :: ys' ->
        List.map (fun rest -> x :: rest) (merge xs' ys)
        @ List.map (fun rest -> y :: rest) (merge xs ys')
  in
  merge xs ys

(* C(n+m, n), multiplicatively: each partial product is itself a
   binomial coefficient, so the division is exact. *)
let interleaving_count n m =
  let rec go acc i = if i > n then acc else go (acc * (m + i) / i) (i + 1) in
  go 1 1

type 'r verdict = { schedule : string list; result : 'r }

let run_schedules ~init ~check schedules =
  let run_one steps =
    let st = init () in
    let ran =
      List.map
        (fun s ->
           (try s.run st with _ -> ());
           s.label)
        steps
    in
    match check st with
    | Some result -> Some { schedule = ran; result }
    | None -> None
  in
  List.filter_map run_one schedules

let explore ~init ~a ~b ~check = run_schedules ~init ~check (interleavings a b)

(* Pick the head of any non-empty sequence as the next step, recurse. *)
let interleavings_n seqs =
  let rec merge_all seqs =
    let seqs = List.filter (fun s -> s <> []) seqs in
    if seqs = [] then [ [] ]
    else
      List.concat
        (List.mapi
           (fun i seq ->
              match seq with
              | [] -> []
              | head :: tail ->
                  let rest = List.mapi (fun j s -> if j = i then tail else s) seqs in
                  List.map (fun m -> head :: m) (merge_all rest))
           seqs)
  in
  merge_all seqs

let interleaving_count_n lengths =
  let total = List.fold_left ( + ) 0 lengths in
  (* multiply (n_prefix + k choose k) over the sequences *)
  let rec go acc consumed = function
    | [] -> acc
    | n :: rest -> go (acc * interleaving_count n consumed) (consumed + n) rest
  in
  ignore total;
  go 1 0 lengths

let explore_n ~init ~procs ~check = run_schedules ~init ~check (interleavings_n procs)
