type t = { data : string; mutable pos : int }

let of_string data = { data; pos = 0 }

let recv t n =
  if n <= 0 then ""
  else begin
    Effect.record (Effect.reads Effect.Socket_stream);
    let n = Fault.Hooks.recv_request ~requested:n ~consumed:t.pos in
    let available = String.length t.data - t.pos in
    let take = min n available in
    let chunk = String.sub t.data t.pos take in
    t.pos <- t.pos + take;
    chunk
  end

let remaining t = String.length t.data - t.pos

let consumed t = t.pos
