(** A connected socket as seen by a server: a byte stream delivered in
    bounded chunks.

    The crucial property (paper, Section 5.1): the socket "has no way
    of determining the length of the input" — the peer's declared
    [Content-Length] and the bytes actually sent are independent, and
    [recv] simply returns whatever is available, up to the caller's
    buffer size. *)

type t

val of_string : string -> t
(** A socket whose peer sends exactly this byte sequence. *)

val recv : t -> int -> string
(** [recv t n] consumes and returns up to [n] pending bytes; [""]
    once the peer is done (C's return of 0). *)

val remaining : t -> int

val consumed : t -> int
