(** Deterministic exploration of process interleavings.

    File race conditions (time-of-check-to-time-of-use) only manifest
    under particular schedules.  Instead of racing wall-clock time,
    the scheduler {e enumerates every interleaving} of two processes'
    atomic steps and evaluates a property on the resulting state —
    making the xterm race (Figure 5) a deterministic, exhaustively
    checkable experiment.

    Exploration honours an optional {!Fault.Budget}: the result
    carries explicit coverage, so a fuel-bounded run reports
    [Partial] rather than silently truncating.  An installed fault
    plan may also perturb individual schedules (drop or replay one
    step) through [Fault.Hooks.schedule_mutation].

    Steps may declare a static {!Effect} footprint ({!step_e}); the
    opt-in [?independent] parameter of {!explore} / {!explore_n} then
    enables sleep-set partial-order reduction: only one representative
    per Mazurkiewicz trace is run, which preserves every reachable
    final state (hence every [check] verdict value) while running far
    fewer schedules.  Without [?independent] the enumeration is
    byte-identical to the unreduced scheduler. *)

type 'st step = {
  label : string;
  effects : Effect.t list;  (** static footprint; [[]] when undeclared *)
  run : 'st -> unit;
}

val step : string -> ('st -> unit) -> 'st step
(** A step with an empty (undeclared) footprint. *)

val step_e : string -> effects:Effect.t list -> ('st -> unit) -> 'st step
(** A step with a declared effect footprint.  The footprint must
    over-approximate every access the step can perform on any schedule
    (the footprint-soundness harness checks this dynamically). *)

val interleavings : 'a list -> 'a list -> 'a list list
(** All merges of the two sequences that preserve each sequence's
    internal order.  Length is [C(n+m, n)]. *)

val interleavings_seq : 'a list -> 'a list -> 'a list Seq.t
(** The same merges, lazily, in the same order. *)

val interleaving_count : int -> int -> int
(** [C(n+m, n)] without materialising the schedules.  Saturates to
    [max_int] when the true count exceeds it (first at [C(66,33)]) —
    never a silently wrapped value.  Raises [Invalid_argument] on
    negative lengths. *)

type 'r verdict = {
  schedule : string list;     (** executed step labels in order *)
  result : 'r;
}

type 'r exploration = {
  verdicts : 'r verdict list;
  coverage : Fault.Budget.coverage;
      (** [Complete] when the schedule enumeration was drained — under
          reduction that can be far fewer runs than the total
          interleaving count *)
  explored : int;  (** schedules actually run *)
}

val explore :
  ?budget:Fault.Budget.t ->
  ?independent:(Effect.t list -> Effect.t list -> bool) ->
  init:(unit -> 'st) ->
  a:'st step list ->
  b:'st step list ->
  check:('st -> 'r option) ->
  unit ->
  'r exploration
(** Run every interleaving (or as many as the budget allows) from a
    fresh state; a step raising one of the osmodel's typed errors
    ({!Filesystem.Fs_error}, [Fault.Condition.Simulated]) is a no-op
    for that process (a failed syscall does not stop the attacker),
    while programming errors propagate.  Collect each schedule on
    which [check] yields a result.  With [?independent] (usually
    {!Effect.independent}), sleep-set reduction runs one schedule per
    trace instead of all of them. *)

(** {2 N processes} *)

val interleavings_n : 'a list list -> 'a list list
(** All merges of any number of sequences — the multinomial
    generalisation of {!interleavings}. *)

val interleavings_n_seq : 'a list list -> 'a list Seq.t

val interleaving_count_n : int list -> int
(** [(Σnᵢ)! / Πnᵢ!] without materialising the schedules; saturates
    like {!interleaving_count}. *)

val schedules_n :
  ?independent:(Effect.t list -> Effect.t list -> bool) ->
  'st step list list ->
  'st step list Seq.t
(** The schedule enumeration itself: full interleavings, or the
    sleep-set-reduced representatives when [?independent] is given.
    Exposed so callers (the race detector) can filter schedules before
    running them. *)

val schedules_por :
  independent:(Effect.t list -> Effect.t list -> bool) ->
  'st step list list ->
  'st step list Seq.t
(** The sleep-set enumeration behind [schedules_n ~independent].
    Sleep and explored sets are int bitmasks over process indices —
    zero allocation per branch decision. *)

val schedules_por_ref :
  independent:(Effect.t list -> Effect.t list -> bool) ->
  'st step list list ->
  'st step list Seq.t
(** Executable specification of {!schedules_por}: the original
    int-list sleep sets.  Schedule-for-schedule identical output; kept
    for the differential property tests and the before/after bench
    legs, not for production use. *)

val run_schedules :
  ?budget:Fault.Budget.t ->
  init:(unit -> 'st) ->
  check:('st -> 'r option) ->
  total:int ->
  'st step list Seq.t ->
  'r exploration
(** Run an explicit schedule sequence under the budget; [total] is the
    unreduced interleaving count reported by a [Partial] coverage. *)

val explore_n :
  ?budget:Fault.Budget.t ->
  ?independent:(Effect.t list -> Effect.t list -> bool) ->
  init:(unit -> 'st) ->
  procs:'st step list list ->
  check:('st -> 'r option) ->
  unit ->
  'r exploration
(** {!explore} over any number of concurrent processes. *)
