(** Deterministic exploration of process interleavings.

    File race conditions (time-of-check-to-time-of-use) only manifest
    under particular schedules.  Instead of racing wall-clock time,
    the scheduler {e enumerates every interleaving} of two processes'
    atomic steps and evaluates a property on the resulting state —
    making the xterm race (Figure 5) a deterministic, exhaustively
    checkable experiment.

    Exploration honours an optional {!Fault.Budget}: the result
    carries explicit coverage, so a fuel-bounded run reports
    [Partial] rather than silently truncating.  An installed fault
    plan may also perturb individual schedules (drop or replay one
    step) through [Fault.Hooks.schedule_mutation]. *)

type 'st step = { label : string; run : 'st -> unit }

val step : string -> ('st -> unit) -> 'st step

val interleavings : 'a list -> 'a list -> 'a list list
(** All merges of the two sequences that preserve each sequence's
    internal order.  Length is [C(n+m, n)]. *)

val interleavings_seq : 'a list -> 'a list -> 'a list Seq.t
(** The same merges, lazily, in the same order. *)

val interleaving_count : int -> int -> int
(** [C(n+m, n)] without materialising the schedules.  Saturates to
    [max_int] when the true count exceeds it (first at [C(66,33)]) —
    never a silently wrapped value.  Raises [Invalid_argument] on
    negative lengths. *)

type 'r verdict = {
  schedule : string list;     (** executed step labels in order *)
  result : 'r;
}

type 'r exploration = {
  verdicts : 'r verdict list;
  coverage : Fault.Budget.coverage;
      (** [Complete] when every interleaving ran *)
}

val explore :
  ?budget:Fault.Budget.t ->
  init:(unit -> 'st) ->
  a:'st step list ->
  b:'st step list ->
  check:('st -> 'r option) ->
  unit ->
  'r exploration
(** Run every interleaving (or as many as the budget allows) from a
    fresh state; steps that raise are treated as no-ops for that
    process (a failed syscall does not stop the attacker).  Collect
    each schedule on which [check] yields a result. *)

(** {2 N processes} *)

val interleavings_n : 'a list list -> 'a list list
(** All merges of any number of sequences — the multinomial
    generalisation of {!interleavings}. *)

val interleavings_n_seq : 'a list list -> 'a list Seq.t

val interleaving_count_n : int list -> int
(** [(Σnᵢ)! / Πnᵢ!] without materialising the schedules; saturates
    like {!interleaving_count}. *)

val explore_n :
  ?budget:Fault.Budget.t ->
  init:(unit -> 'st) ->
  procs:'st step list list ->
  check:('st -> 'r option) ->
  unit ->
  'r exploration
(** {!explore} over any number of concurrent processes. *)
