(** Deterministic exploration of process interleavings.

    File race conditions (time-of-check-to-time-of-use) only manifest
    under particular schedules.  Instead of racing wall-clock time,
    the scheduler {e enumerates every interleaving} of two processes'
    atomic steps and evaluates a property on the resulting state —
    making the xterm race (Figure 5) a deterministic, exhaustively
    checkable experiment. *)

type 'st step = { label : string; run : 'st -> unit }

val step : string -> ('st -> unit) -> 'st step

val interleavings : 'a list -> 'a list -> 'a list list
(** All merges of the two sequences that preserve each sequence's
    internal order.  Length is [C(n+m, n)]. *)

val interleaving_count : int -> int -> int
(** [C(n+m, n)] without materialising the schedules. *)

type 'r verdict = {
  schedule : string list;     (** executed step labels in order *)
  result : 'r;
}

val explore :
  init:(unit -> 'st) ->
  a:'st step list ->
  b:'st step list ->
  check:('st -> 'r option) ->
  'r verdict list
(** Run every interleaving from a fresh state; steps that raise are
    treated as no-ops for that process (a failed syscall does not
    stop the attacker).  Collect each schedule on which [check]
    yields a result. *)

(** {2 N processes} *)

val interleavings_n : 'a list list -> 'a list list
(** All merges of any number of sequences — the multinomial
    generalisation of {!interleavings}. *)

val interleaving_count_n : int list -> int
(** [(Σnᵢ)! / Πnᵢ!] without materialising the schedules. *)

val explore_n :
  init:(unit -> 'st) ->
  procs:'st step list list ->
  check:('st -> 'r option) ->
  'r verdict list
(** {!explore} over any number of concurrent processes. *)
