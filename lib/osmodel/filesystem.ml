type kind = Regular_file | Terminal

type file = {
  mutable content : string;
  kind : kind;
  owner : User.t;
  mutable mode : Perm.t;
}

type node = File of file | Symlink of string

type error =
  | Not_found_ of string
  | Permission_denied of string
  | Too_many_links of string
  | Already_exists of string

exception Fs_error of error

let error_message = function
  | Not_found_ p -> p ^ ": no such file or directory"
  | Permission_denied p -> p ^ ": permission denied"
  | Too_many_links p -> p ^ ": too many levels of symbolic links"
  | Already_exists p -> p ^ ": file exists"

type t = { nodes : (string, node) Hashtbl.t }

type fd = { fd_path : string }

let create () = { nodes = Hashtbl.create 32 }

(* Normalise an absolute path: collapse ["//"], ["."] and [".."]. *)
let normalise path =
  let parts = String.split_on_char '/' path in
  let step acc part =
    match part, acc with
    | ("" | "."), _ -> acc
    | "..", _ :: rest -> rest
    | "..", [] -> []
    | p, _ -> p :: acc
  in
  let stack = List.fold_left step [] parts in
  "/" ^ String.concat "/" (List.rev stack)

let join ~cwd path =
  if String.length path > 0 && path.[0] = '/' then normalise path
  else normalise (cwd ^ "/" ^ path)

let node_opt t path = Hashtbl.find_opt t.nodes path

(* Every public operation reports its accesses to the ambient
   [Effect] observer (a no-op unless the footprint-soundness harness
   installed one): attribute reads for resolution/stat-style queries,
   write-like records for every mutation of content or binding. *)
let observe_attr p = Effect.record (Effect.reads (Effect.Path_attr p))

let resolve t ?(cwd = "/") path =
  let origin = join ~cwd path in
  observe_attr origin;
  let rec follow p depth =
    if depth > 16 then raise (Fs_error (Too_many_links p));
    match node_opt t p with
    | Some (Symlink target) -> follow (join ~cwd:(Filename.dirname p) target) (depth + 1)
    | Some (File _) | None -> p
  in
  let final = follow origin 0 in
  if final <> origin then observe_attr final;
  final

let mkfile t path ~owner ~mode ?(kind = Regular_file) content =
  let p = normalise path in
  if Hashtbl.mem t.nodes p then raise (Fs_error (Already_exists p));
  Effect.record (Effect.creates (Effect.Path p));
  Hashtbl.replace t.nodes p (File { content; kind; owner; mode })

let symlink t ~link ~target =
  let p = normalise link in
  if Hashtbl.mem t.nodes p then raise (Fs_error (Already_exists p));
  Effect.record (Effect.creates (Effect.Path p));
  Hashtbl.replace t.nodes p (Symlink target)

let unlink t path ~as_user:_ =
  let p = normalise path in
  if not (Hashtbl.mem t.nodes p) then raise (Fs_error (Not_found_ p));
  Effect.record (Effect.unlinks (Effect.Path p));
  Hashtbl.remove t.nodes p

let exists t path =
  let p = normalise path in
  observe_attr p;
  Hashtbl.mem t.nodes p

let is_symlink t path =
  let p = normalise path in
  observe_attr p;
  match node_opt t p with
  | Some (Symlink _) -> true
  | Some (File _) | None -> false

let file_exn t path =
  let p = resolve t path in
  match node_opt t p with
  | Some (File f) -> (p, f)
  | Some (Symlink _) -> raise (Fs_error (Too_many_links p))
  | None -> raise (Fs_error (Not_found_ p))

let kind_of t path = let _, f = file_exn t path in f.kind

let owner_of t path = let _, f = file_exn t path in f.owner

let mode_of t path = let _, f = file_exn t path in f.mode

let chmod t path mode =
  let p, f = file_exn t path in
  Effect.record (Effect.chmods (Effect.Path_attr p));
  f.mode <- mode

let access_write t path ~as_user =
  match file_exn t path with
  | p, f ->
      (not (Fault.Hooks.fs_denies ~path:p))
      && Perm.can_write f.mode ~owner:f.owner ~as_user
  | exception Fs_error _ -> false

let open_write t ?(cwd = "/") path ~as_user =
  let p = resolve t ~cwd path in
  if Fault.Hooks.fs_denies ~path:p then
    Fault.Condition.fail (Fault.Condition.Fs_denied { path = p });
  (match node_opt t p with
   | Some (File f) ->
       if not (Perm.can_write f.mode ~owner:f.owner ~as_user) then
         raise (Fs_error (Permission_denied p))
   | Some (Symlink _) -> raise (Fs_error (Too_many_links p))
   | None ->
       Effect.record (Effect.creates (Effect.Path p));
       Hashtbl.replace t.nodes p
         (File { content = ""; kind = Regular_file; owner = as_user;
                 mode = Perm.of_octal 0o644 }));
  { fd_path = p }

let fd_path fd = fd.fd_path

let fd_file t fd =
  match node_opt t fd.fd_path with
  | Some (File f) -> f
  | Some (Symlink _) | None -> raise (Fs_error (Not_found_ fd.fd_path))

let write t fd data =
  Effect.record (Effect.writes (Effect.Path fd.fd_path));
  (fd_file t fd).content <- data

let append t fd data =
  let f = fd_file t fd in
  Effect.record (Effect.writes (Effect.Path fd.fd_path));
  f.content <- f.content ^ data

let read t path ~as_user =
  let p, f = file_exn t path in
  if Fault.Hooks.fs_denies ~path:p then
    Fault.Condition.fail (Fault.Condition.Fs_denied { path = p });
  if not (Perm.can_read f.mode ~owner:f.owner ~as_user) then
    raise (Fs_error (Permission_denied p));
  Effect.record (Effect.reads (Effect.Path p));
  f.content

let content t path =
  let _, f = file_exn t path in
  f.content

let paths t = Hashtbl.fold (fun p _ acc -> p :: acc) t.nodes [] |> List.sort compare
