type obj =
  | Path of string
  | Path_attr of string
  | Socket_stream
  | Uid of string
  | Mem of string

type action = Reads | Writes | Creates | Unlinks | Chmods

type t = { action : action; obj : obj }

let reads obj = { action = Reads; obj }

let writes obj = { action = Writes; obj }

let creates obj = { action = Creates; obj }

let unlinks obj = { action = Unlinks; obj }

let chmods obj = { action = Chmods; obj }

let write_like = function
  | Reads -> false
  | Writes | Creates | Unlinks | Chmods -> true

(* Content and attributes of one path are conflated into a single key:
   unlinking or relinking a path changes both what a stat returns and
   what an open reaches, so keeping them apart would under-report
   conflicts and make the independence relation unsound. *)
let key e =
  match e.obj with
  | Path p | Path_attr p -> "path:" ^ p
  | Socket_stream -> "socket:"
  | Uid u -> "uid:" ^ u
  | Mem m -> "mem:" ^ m

let obj_name e =
  match e.obj with
  | Path p | Path_attr p -> p
  | Socket_stream -> "<socket>"
  | Uid u -> u
  | Mem m -> m

let same_object a b = String.equal (key a) (key b)

let conflicts a b =
  same_object a b && (write_like a.action || write_like b.action)

let independent fa fb =
  not (List.exists (fun a -> List.exists (fun b -> conflicts a b) fb) fa)

(* Containment of a dynamic access in a static footprint.  The
   invariant partial-order reduction needs is exactly: every dynamic
   access touches a key the footprint mentions, and every dynamic
   mutation touches a key the footprint mentions with a write-like
   action.  A read access is therefore covered by any footprint entry
   on its key; a write-like access needs a write-like entry. *)
let covers f e =
  same_object f e && (write_like f.action || not (write_like e.action))

let covered_by e footprint = List.exists (fun f -> covers f e) footprint

let action_to_string = function
  | Reads -> "reads"
  | Writes -> "writes"
  | Creates -> "creates"
  | Unlinks -> "unlinks"
  | Chmods -> "chmods"

let obj_to_string = function
  | Path p -> p
  | Path_attr p -> "attr(" ^ p ^ ")"
  | Socket_stream -> "socket"
  | Uid u -> "uid:" ^ u
  | Mem m -> "mem:" ^ m

let to_string e =
  Printf.sprintf "%s %s" (action_to_string e.action) (obj_to_string e.obj)

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* ---- the dynamic-access observer ---------------------------------- *)

(* One ambient observer, installed by the footprint-soundness harness
   for the extent of a single step.  Not domain-safe: the harness runs
   on one domain; production code never installs an observer, and an
   uninstalled observer makes [record] a read of an immutable [None]. *)
let observer : (t -> unit) option ref = ref None

let record e =
  match !observer with
  | None -> ()
  | Some f -> f e

let with_observer f k =
  let saved = !observer in
  observer := Some f;
  Fun.protect ~finally:(fun () -> observer := saved) k
