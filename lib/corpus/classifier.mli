(** Nearest-centroid classification over report feature vectors,
    evaluated against the known Figure-1 categories.

    Training folds feature vectors into one mean per category (in a
    fixed sequential order, so the float sums are identical at any
    [-j] and chunk size); prediction is the nearest centroid under
    squared Euclidean distance, ties broken by {!Vulndb.Category.all}
    order.  The confusion matrix accumulates plain integer counts, so
    merging per-chunk matrices in index order is exact and
    deterministic. *)

type model
(** Trained centroids, one per Figure-1 category. *)

val ncat : int
(** 12 — the Figure-1 categories, in {!Vulndb.Category.all} order. *)

val train : (Vulndb.Category.t * float array) Seq.t -> model
(** Fold labelled vectors into per-category means.  A category with
    no training vectors keeps an all-zero centroid. *)

val predict : model -> float array -> int
(** Index (in {!Vulndb.Category.all} order) of the nearest centroid. *)

val model_digest : model -> string
(** Hex digest of the centroid floats — a cache-key component. *)

type confusion = {
  n : int;                (** vectors classified *)
  counts : int array;     (** row-major [ncat * ncat]: true * ncat + predicted *)
}

val confusion_empty : confusion

val confuse : confusion -> truth:int -> predicted:int -> confusion

val confusion_merge : confusion -> confusion -> confusion

val classify_all : model -> Vulndb.Report.t list -> confusion
(** Classify every report (truth = its recorded category) into a
    fresh confusion matrix. *)

val accuracy : confusion -> float
(** Trace over total; 0 on an empty matrix. *)

val majority_share : confusion -> float
(** Share of the most frequent true category — the baseline any
    useful classifier must beat. *)

val category_rows : confusion -> (Vulndb.Category.t * int * int) list
(** Per category: (category, true count, correctly predicted). *)
