module Synth = Vulndb.Synth
module Category = Vulndb.Category

let m_chunks = Obs.Metrics.counter "corpus.chunks"
let m_reports = Obs.Metrics.counter "corpus.reports"
let m_generated = Obs.Metrics.counter "corpus.generated"
let m_summaries = Obs.Metrics.counter "corpus.summaries"

let train_chunk = 512

let key fmt = Printf.ksprintf (fun s -> Digest.to_hex (Digest.string s)) fmt

let centroids ~seed =
  match Synth.plan ~total:Synth.legacy_total () with
  | Error e -> Error e
  | Ok p ->
      let k =
        key "corpus-centroids/1|%s|seed=%d|%s" (Synth.plan_digest p) seed
          Features.version
      in
      Ok
        (Store.Handle.cached ~tag:"corpus-centroids" ~key:k (fun () ->
             let n = Synth.chunk_count p ~chunk:train_chunk in
             Classifier.train
               (Seq.concat_map
                  (fun i ->
                    Seq.map
                      (fun (r : Vulndb.Report.t) ->
                        (r.Vulndb.Report.category, Features.of_report r))
                      (List.to_seq
                         (Synth.chunk_reports p ~seed ~chunk:train_chunk ~index:i)))
                  (Seq.init n Fun.id))))

type t = {
  total : int;
  planned : int;
  chunk : int;
  chunks : int;
  confusion : Classifier.confusion;
  accuracy : float;
  baseline : float;
}

let run ?curated ~seed ~total ~chunk () =
  if chunk < 1 then Error (Synth.Invalid_chunk chunk)
  else
    match Synth.plan ?curated ~total () with
    | Error e -> Error e
    | Ok p -> (
        match centroids ~seed with
        | Error e -> Error e
        | Ok model ->
            let md = Classifier.model_digest model in
            let pd = Synth.plan_digest p in
            let n = Synth.chunk_count p ~chunk in
            let summary i =
              Store.Handle.cached ~tag:"corpus-summary"
                ~key:
                  (key "corpus-summary/1|%s|seed=%d|chunk=%d|index=%d|%s|%s" pd
                     seed chunk i md Features.version)
                (fun () ->
                  Obs.Metrics.incr m_summaries;
                  let reports =
                    Store.Handle.cached ~tag:"corpus-chunk"
                      ~key:
                        (key "corpus-chunk/1|%s|seed=%d|chunk=%d|index=%d" pd
                           seed chunk i)
                      (fun () ->
                        let rs = Synth.chunk_reports p ~seed ~chunk ~index:i in
                        Obs.Metrics.add m_generated (List.length rs);
                        rs)
                  in
                  Classifier.classify_all model reports)
            in
            let summaries =
              Par.map ~label:"corpus-classify" summary (Array.init n Fun.id)
            in
            let confusion =
              Array.fold_left Classifier.confusion_merge
                Classifier.confusion_empty summaries
            in
            Obs.Metrics.add m_chunks n;
            Obs.Metrics.add m_reports confusion.Classifier.n;
            Ok
              { total; planned = Synth.plan_size p; chunk; chunks = n;
                confusion;
                accuracy = Classifier.accuracy confusion;
                baseline = Classifier.majority_share confusion })

let ok t = t.confusion.Classifier.n = t.planned && t.accuracy >= t.baseline

let pp ppf t =
  Format.fprintf ppf "corpus: %d reports planned (%d requested), %d chunk%s of %d@."
    t.planned t.total t.chunks
    (if t.chunks = 1 then "" else "s")
    t.chunk;
  Format.fprintf ppf "classified: %d  accuracy: %.4f  baseline: %.4f  %s@."
    t.confusion.Classifier.n t.accuracy t.baseline
    (if ok t then "ok" else "DEGRADED");
  Format.fprintf ppf "%-44s %10s %10s %8s@." "category" "reports" "correct"
    "recall";
  List.iter
    (fun (c, total, correct) ->
      Format.fprintf ppf "%-44s %10d %10d %8s@." (Category.to_string c) total
        correct
        (if total = 0 then "-"
         else Printf.sprintf "%.4f" (float_of_int correct /. float_of_int total)))
    (Classifier.category_rows t.confusion)

let to_json t =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"total\": %d,\n" t.total;
  add "  \"planned\": %d,\n" t.planned;
  add "  \"chunk\": %d,\n" t.chunk;
  add "  \"chunks\": %d,\n" t.chunks;
  add "  \"classified\": %d,\n" t.confusion.Classifier.n;
  add "  \"accuracy\": %.6f,\n" t.accuracy;
  add "  \"baseline\": %.6f,\n" t.baseline;
  add "  \"ok\": %b,\n" (ok t);
  add "  \"categories\": [\n";
  let rows = Classifier.category_rows t.confusion in
  List.iteri
    (fun i (c, total, correct) ->
      add "    {\"category\": \"%s\", \"reports\": %d, \"correct\": %d}%s\n"
        (Obs.Metrics.json_escape (Category.to_string c))
        total correct
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ],\n";
  add "  \"confusion\": [\n";
  let ncat = Classifier.ncat in
  for i = 0 to ncat - 1 do
    Buffer.add_string b "    [";
    for j = 0 to ncat - 1 do
      if j > 0 then Buffer.add_string b ", ";
      add "%d" t.confusion.Classifier.counts.((i * ncat) + j)
    done;
    add "]%s\n" (if i = ncat - 1 then "" else ",")
  done;
  add "  ]\n}";
  Buffer.contents b
