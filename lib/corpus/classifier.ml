module Category = Vulndb.Category

let categories = Array.of_list Category.all

let ncat = Array.length categories

let category_index =
  let tbl = Hashtbl.create ncat in
  Array.iteri (fun i c -> Hashtbl.replace tbl (Category.to_string c) i) categories;
  fun c -> Hashtbl.find tbl (Category.to_string c)

type model = { centroids : float array array }

let train seq =
  let sums = Array.init ncat (fun _ -> Array.make Features.dim 0.) in
  let counts = Array.make ncat 0 in
  Seq.iter
    (fun (category, v) ->
      let i = category_index category in
      counts.(i) <- counts.(i) + 1;
      let s = sums.(i) in
      for k = 0 to Features.dim - 1 do
        s.(k) <- s.(k) +. v.(k)
      done)
    seq;
  let centroids =
    Array.init ncat (fun i ->
        if counts.(i) = 0 then Array.make Features.dim 0.
        else begin
          let n = float_of_int counts.(i) in
          Array.map (fun s -> s /. n) sums.(i)
        end)
  in
  { centroids }

let predict model v =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i c ->
      let d = ref 0. in
      for k = 0 to Features.dim - 1 do
        let x = v.(k) -. c.(k) in
        d := !d +. (x *. x)
      done;
      if !d < !best_d then begin
        best := i;
        best_d := !d
      end)
    model.centroids;
  !best

let model_digest model =
  let b = Buffer.create 1024 in
  Buffer.add_string b "corpus-centroids/1";
  Array.iter
    (fun c ->
      Array.iter (fun x -> Buffer.add_string b (Printf.sprintf "|%h" x)) c)
    model.centroids;
  Digest.to_hex (Digest.string (Buffer.contents b))

type confusion = { n : int; counts : int array }

let confusion_empty = { n = 0; counts = Array.make (ncat * ncat) 0 }

let confuse m ~truth ~predicted =
  let counts = Array.copy m.counts in
  let k = (truth * ncat) + predicted in
  counts.(k) <- counts.(k) + 1;
  { n = m.n + 1; counts }

let confusion_merge a b =
  { n = a.n + b.n; counts = Array.init (ncat * ncat) (fun k -> a.counts.(k) + b.counts.(k)) }

let classify_all model reports =
  (* in-place accumulation: [confuse] copies, which is fine for tests
     but not for a million-report sweep *)
  let counts = Array.make (ncat * ncat) 0 in
  let n = ref 0 in
  List.iter
    (fun (r : Vulndb.Report.t) ->
      let truth = category_index r.Vulndb.Report.category in
      let predicted = predict model (Features.of_report r) in
      let k = (truth * ncat) + predicted in
      counts.(k) <- counts.(k) + 1;
      incr n)
    reports;
  { n = !n; counts }

let accuracy m =
  if m.n = 0 then 0.
  else begin
    let correct = ref 0 in
    for i = 0 to ncat - 1 do
      correct := !correct + m.counts.((i * ncat) + i)
    done;
    float_of_int !correct /. float_of_int m.n
  end

let true_count m i =
  let t = ref 0 in
  for j = 0 to ncat - 1 do
    t := !t + m.counts.((i * ncat) + j)
  done;
  !t

let majority_share m =
  if m.n = 0 then 0.
  else begin
    let best = ref 0 in
    for i = 0 to ncat - 1 do
      best := max !best (true_count m i)
    done;
    float_of_int !best /. float_of_int m.n
  end

let category_rows m =
  List.mapi
    (fun i c -> (c, true_count m i, m.counts.((i * ncat) + i)))
    (Array.to_list categories)
