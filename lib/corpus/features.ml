module Report = Vulndb.Report

let version = "corpus-features/1"

(* model-derived slots, then metadata slots *)
let names =
  [| "operations"; "objects"; "activities"; "gates"; "object_type_checks";
     "content_attribute_checks"; "reference_consistency_checks";
     "missing_checks"; "range_remote"; "range_local"; "range_both";
     "title_length"; "title_words"; "year" |]

let dim = Array.length names

let model_dim = 8

let model_of_flaw = function
  | Report.Stack_buffer_overflow -> Some (Apps.Buffer_overflow_pattern.model ())
  | Report.Heap_overflow -> Some (Apps.Nullhttpd.model (Apps.Nullhttpd.setup ()))
  | Report.Integer_overflow -> Some (Apps.Int_overflow_pattern.model ())
  | Report.Format_string -> Some (Apps.Format_string_pattern.model ())
  | Report.File_race -> Some (Apps.Xterm.model ())
  | Report.Path_traversal -> Some (Apps.Iis.model (Apps.Iis.setup ()))
  | Report.Other_flaw -> None

let all_flaws =
  [| Report.Stack_buffer_overflow; Report.Heap_overflow;
     Report.Integer_overflow; Report.Format_string; Report.File_race;
     Report.Path_traversal; Report.Other_flaw |]

let flaw_index = function
  | Report.Stack_buffer_overflow -> 0
  | Report.Heap_overflow -> 1
  | Report.Integer_overflow -> 2
  | Report.Format_string -> 3
  | Report.File_race -> 4
  | Report.Path_traversal -> 5
  | Report.Other_flaw -> 6

let kind_count kinds k =
  match List.assoc_opt k kinds with Some n -> float_of_int n | None -> 0.

(* Computed eagerly, on the main domain, before any Par fan-out can
   race the lazy guts of model construction. *)
let flaw_table : float array array =
  Array.map
    (fun flaw ->
      match model_of_flaw flaw with
      | None -> Array.make model_dim 0.
      | Some m ->
          let t = Pfsm.Metrics.of_model m in
          [| float_of_int t.Pfsm.Metrics.operations;
             float_of_int (List.length t.Pfsm.Metrics.objects);
             float_of_int t.Pfsm.Metrics.elementary_activities;
             float_of_int (max 0 (t.Pfsm.Metrics.operations - 1));
             kind_count t.Pfsm.Metrics.kinds Pfsm.Taxonomy.Object_type_check;
             kind_count t.Pfsm.Metrics.kinds Pfsm.Taxonomy.Content_attribute_check;
             kind_count t.Pfsm.Metrics.kinds Pfsm.Taxonomy.Reference_consistency_check;
             float_of_int t.Pfsm.Metrics.missing_checks |])
    all_flaws

let year_of (r : Report.t) =
  if String.length r.Report.date >= 4 then
    match int_of_string_opt (String.sub r.Report.date 0 4) with
    | Some y -> y - 1998
    | None -> 0
  else 0

let word_count s =
  let words = ref 0 and in_word = ref false in
  String.iter
    (fun c ->
      if c = ' ' then in_word := false
      else if not !in_word then begin
        in_word := true;
        incr words
      end)
    s;
  !words

let of_report (r : Report.t) =
  let v = Array.make dim 0. in
  Array.blit flaw_table.(flaw_index r.Report.flaw) 0 v 0 model_dim;
  (match r.Report.range with
   | Report.Remote -> v.(model_dim) <- 1.
   | Report.Local -> v.(model_dim + 1) <- 1.
   | Report.Both -> v.(model_dim + 2) <- 1.);
  v.(model_dim + 3) <- float_of_int (String.length r.Report.title);
  v.(model_dim + 4) <- float_of_int (word_count r.Report.title);
  v.(model_dim + 5) <- float_of_int (year_of r);
  v
