(** The per-report feature vector behind the corpus classifier
    (PAPERS.md: Modena's vulnerability-classification metric).

    Each report maps to a fixed-length numeric vector built from two
    sources: the pFSM model of its flaw mechanism — the paper's own
    structural quantities via {!Pfsm.Metrics.of_model} (operation
    cascade length, distinct objects, elementary activities,
    propagation gates, the three taxonomy kinds, missing checks) —
    and the report's Bugtraq metadata (exploitable range, title
    shape, year).  The flaw-model features are computed once per flaw
    at module initialisation; extraction is then allocation-light and
    safe to run on pool domains. *)

val dim : int
(** Length of every feature vector. *)

val names : string array
(** Feature names, index-aligned with the vectors ([dim] entries). *)

val model_of_flaw : Vulndb.Report.flaw -> Pfsm.Model.t option
(** The app or pattern model standing in for a flaw mechanism:
    stack overflow → the Section-3.2 buffer-overflow pattern, heap
    overflow → Null HTTPD, integer overflow → the sendmail-family
    pattern, format string → the *printf pattern, file race → xterm,
    path traversal → IIS.  [None] for [Other_flaw] (no modelled
    structure; its model features are zero). *)

val of_report : Vulndb.Report.t -> float array
(** The feature vector; a pure function of the report. *)

val version : string
(** Cache-key component: bump when the vector layout changes. *)
