(** The streaming corpus sweep: chunked generation spilled through the
    persistent store, per-chunk classification summaries cached via
    {!Store.Handle.cached}, and a deterministic in-order merge.

    Layout per chunk (all keys derive from the plan digest, the seed,
    the chunk geometry, the centroid digest and the feature version):

    - ["corpus-chunk"] — the generated reports themselves, one
      checksummed record per chunk.  This is the on-disk spill: every
      byte goes through {!Store.Io}, so [chaos --disk] fault plans and
      [dfsm fsck] cover the shards like any other record.
    - ["corpus-summary"] — the chunk's classification confusion
      counts.  On a warm store this tier short-circuits the whole
      chunk (no generation, no feature extraction), which is what
      makes million-report sweeps incremental across processes.
    - ["corpus-centroids"] — the trained classifier (always on the
      legacy 5925-report corpus, fixed internal chunking, sequential
      float folds — independent of [--chunk] and [-j]).

    Without an installed store every tier degrades to compute.  The
    merge folds integer matrices in chunk-index order, so the result
    is byte-identical at any [-j] and invariant under chunk size.

    Counters: [corpus.chunks], [corpus.reports] (accounted into the
    final matrix), [corpus.generated] (reports generated fresh this
    process), [corpus.summaries] (summaries computed fresh). *)

type t = {
  total : int;    (** requested corpus size *)
  planned : int;  (** {!Vulndb.Synth.plan_size}: curated + synthetic *)
  chunk : int;
  chunks : int;
  confusion : Classifier.confusion;
  accuracy : float;
  baseline : float;  (** majority-category share *)
}

val centroids : seed:int -> (Classifier.model, Vulndb.Synth.error) result
(** The trained (store-cached) classifier. *)

val run :
  ?curated:Vulndb.Report.t list ->
  seed:int ->
  total:int ->
  chunk:int ->
  unit ->
  (t, Vulndb.Synth.error) result
(** Classify a [total]-report corpus in [chunk]-sized pieces fanned
    over the {!Par} pool.  At most one chunk of reports is resident
    per worker. *)

val ok : t -> bool
(** Conservation (every planned report classified exactly once) and
    the classifier beating the majority-class baseline. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** Deterministic rendering: geometry, accuracy, per-category rows,
    and the full confusion matrix.  No timings, no volatile state. *)
