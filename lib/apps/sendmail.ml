module P = Pfsm.Predicate

type config = {
  input_check : bool;
  full_index_check : bool;
  got_audit : bool;
}

let vulnerable = { input_check = false; full_index_check = false; got_audit = false }

type t = {
  proc : Machine.Process.t;
  config : config;
  tTvect : Machine.Addr.t;
  mcode : Machine.Addr.t;
}

(* The paper's predicate admits indices 0..100 inclusive, so the
   array holds 101 debug slots. *)
let tTvect_entries = 101

let setup ?(config = vulnerable) ?aslr_seed () =
  let proc = Machine.Process.create ?aslr_seed () in
  Machine.Process.register_function proc "setuid";
  Machine.Process.register_function proc "main";
  let tTvect = Machine.Process.alloc_global proc "tTvect" (4 * tTvect_entries) in
  let mcode = Machine.Process.alloc_global proc "mcode" 64 in
  Machine.Process.mark_shellcode proc ~addr:mcode ~len:64 ~label:"Mcode";
  { proc; config; tTvect; mcode }

let proc t = t.proc

let config t = t.config

let tTvect_addr t = t.tTvect

let setuid_slot t = Machine.Got.slot_addr (Machine.Process.got t.proc) "setuid"

let mcode_addr t = t.mcode

let exploit_index t = (setuid_slot t - t.tTvect) / 4

let exploit_str_x t = string_of_int (exploit_index t + 0x1_0000_0000)

let str_x_representable str_x =
  match Pfsm.Strcodec.parse_integer str_x with
  | Some v -> Pfsm.Strcodec.fits_int32 v
  | None -> true   (* non-numeric parses to 0: representable *)

let tTflag t ~str_x ~str_i =
  Outcome.guard @@ fun () ->
  if t.config.input_check && not (str_x_representable str_x) then
    Outcome.Refused "str_x does not represent a 32-bit integer"
  else
    let x = Pfsm.Strcodec.atoi32 str_x in
    let i = Pfsm.Strcodec.atoi32 str_i in
    let out_of_range =
      if t.config.full_index_check then x < 0 || x > 100 else x > 100
    in
    if out_of_range then Outcome.Refused "index x out of range"
    else
      let target = t.tTvect + (4 * x) in
      match Machine.Memory.write_i32 (Machine.Process.mem t.proc) target i with
      | () ->
          if target >= t.tTvect && target < t.tTvect + (4 * tTvect_entries) then
            Outcome.Benign (Printf.sprintf "tTvect[%d] = %d" x i)
          else if target = setuid_slot t then
            Outcome.Arbitrary_write { addr = target; value = i }
          else
            Outcome.Memory_corruption
              (Printf.sprintf "tTvect[%d] write landed at 0x%08x" x target)
      | exception Machine.Memory.Fault { addr; _ } ->
          Outcome.Crash (Printf.sprintf "segfault writing 0x%08x" addr)

let call_setuid t =
  let got = Machine.Process.got t.proc in
  if t.config.got_audit && not (Machine.Got.unchanged got "setuid") then
    Outcome.Protection_triggered "GOT entry of setuid was tampered with"
  else
    match Machine.Process.call_via_got t.proc "setuid" with
    | Machine.Process.Legit name -> Outcome.Benign (name ^ " executed normally")
    | Machine.Process.Shellcode label -> Outcome.Code_execution label
    | Machine.Process.Wild addr ->
        Outcome.Crash (Printf.sprintf "setuid call jumped to 0x%08x" addr)

let run_attack t ~str_x ~str_i =
  Outcome.guard @@ fun () ->
  let o1 = tTflag t ~str_x ~str_i in
  match o1 with
  | Outcome.Refused _ | Outcome.Protection_triggered _ | Outcome.Crash _
  | Outcome.Resource_fault _ -> o1
  | Outcome.Benign _ | Outcome.Arbitrary_write _ | Outcome.Memory_corruption _
  | Outcome.Code_execution _ | Outcome.File_overwritten _ | Outcome.Info_leak _ -> (
      let o2 = call_setuid t in
      match o2 with
      | Outcome.Benign _ -> (
          match o1 with
          | Outcome.Benign _ -> Outcome.Benign "debug level set; setuid ran normally"
          | other -> other)
      | other -> other)

(* ------------------------------------------------------------------ *)
(* The Figure-3 FSM model, with this instance's addresses baked in.   *)

let scenario ~str_x ~str_i =
  Pfsm.Env.empty
  |> Pfsm.Env.add_str "input.str_x" str_x
  |> Pfsm.Env.add_str "input.str_i" str_i

let exploit_scenario t =
  scenario ~str_x:(exploit_str_x t) ~str_i:(string_of_int t.mcode)

let benign_scenario = scenario ~str_x:"42" ~str_i:"7"

let model t =
  let original = Machine.Got.original (Machine.Process.got t.proc) "setuid" in
  let slot = setuid_slot t in
  let pfsm1 =
    Pfsm.Primitive.make ~name:"pFSM1" ~kind:Pfsm.Taxonomy.Object_type_check
      ~activity:"get text strings str_x and str_i; convert to integers i and x"
      ~spec:(P.Fits_int32 P.Self)
      ~impl:(if t.config.input_check then P.Fits_int32 P.Self else P.True)
  in
  let convert env obj =
    let x = Pfsm.Strcodec.atoi32 (Pfsm.Value.as_str obj) in
    let i = Pfsm.Strcodec.atoi32 (Pfsm.Env.get_str "input.str_i" env) in
    let env = env |> Pfsm.Env.add_int "x" x |> Pfsm.Env.add_int "i" i in
    (env, Pfsm.Value.Int x)
  in
  let index_spec = P.between P.Self ~low:0 ~high:100 in
  let pfsm2 =
    Pfsm.Primitive.make ~name:"pFSM2" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"write i to tTvect[x]"
      ~spec:index_spec
      ~impl:
        (if t.config.full_index_check then index_spec
         else P.Cmp (P.Le, P.Self, P.Lit (Pfsm.Value.Int 100)))
  in
  (* capture the scalar base address, not [t]: closing over [t] would
     drag the whole process image (1 MB of Machine.Memory) into the
     model's marshal image and the analysis-memo digest *)
  let tTvect = t.tTvect in
  let write_effect env =
    let x = Pfsm.Env.get_int "x" env and i = Pfsm.Env.get_int "i" env in
    let target = tTvect + (4 * x) in
    let current = if target = slot then i else original in
    Pfsm.Env.add_addr "got.setuid.current" current env
  in
  let op1 =
    Pfsm.Operation.make ~name:"Write debug level i to tTvect[x]"
      ~object_name:"input integers (str_x, str_i)"
      ~effect_label:"GOT entry of setuid may now point to Mcode"
      ~effect_:write_effect
      [ Pfsm.Operation.stage ~action:convert
          ~action_label:"convert str_i and str_x to integers i and x" pfsm1;
        Pfsm.Operation.stage ~action_label:"tTvect[x] = i" pfsm2 ]
  in
  let ref_spec = P.Cmp (P.Eq, P.Self, P.Lit (Pfsm.Value.Addr original)) in
  let pfsm3 =
    Pfsm.Primitive.make ~name:"pFSM3" ~kind:Pfsm.Taxonomy.Reference_consistency_check
      ~activity:"execute code referred by addr_setuid"
      ~spec:ref_spec
      ~impl:(if t.config.got_audit then ref_spec else P.True)
  in
  let exec_effect env =
    let current = Pfsm.Env.get_addr "got.setuid.current" env in
    Pfsm.Env.add_bool "mcode_executed" (current <> original) env
  in
  let op2 =
    Pfsm.Operation.make ~name:"Manipulate the GOT entry of function setuid"
      ~object_name:"addr_setuid"
      ~effect_label:"Execute Mcode" ~effect_:exec_effect
      [ Pfsm.Operation.stage ~action_label:"jump to *addr_setuid" pfsm3 ]
  in
  Pfsm.Model.make ~name:"Sendmail Debugging Function Signed Integer Overflow"
    ~bugtraq_id:3163
    ~description:
      "A signed integer overflow in tTflag() lets a negative array index rewrite the \
       GOT entry of setuid(), redirecting the next setuid() call to attacker code."
    [ Pfsm.Model.bind
        ~input:(fun env -> Pfsm.Env.get "input.str_x" env)
        ~input_label:"user input string str_x" op1;
      Pfsm.Model.bind
        ~input:(fun env -> Pfsm.Env.get "got.setuid.current" env)
        ~input_label:"addr_setuid (GOT entry of setuid)" op2 ]
