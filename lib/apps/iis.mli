(** IIS CGI filename superfluous decoding — Figure 7, Bugtraq #2708.

    IIS checks the requested CGI path for ["../"] after {e one} pass
    of URL decoding, then decodes a {e second} time before resolving
    the file under [/wwwroot/scripts].  ["..%252f"] survives the
    check (it is ["..%2f"] after one pass) and becomes ["../"] after
    the second, so the target escapes the scripts directory — the
    hole Nimda exploited. *)

type config = { single_decode : bool (** the fix: decode exactly once *) }

val vulnerable : config

type t

val setup : ?config:config -> unit -> t

val scripts_root : string

val handle_request : t -> string -> Outcome.t
(** Process one CGI request path (URL-encoded, relative to
    [/wwwroot/scripts]). *)

val model : t -> Pfsm.Model.t
(** Figure 7.  Scenario key: ["request.path"]. *)

val scenario : path:string -> Pfsm.Env.t

val attack_path : string
(** ["..%252f..%252fwinnt%252fsystem32%252fcmd.exe"]. *)

val benign_path : string
