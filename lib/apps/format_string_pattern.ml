type activity = Get_input_string | Use_as_format | Write_formatted_output

let activities = [ Get_input_string; Use_as_format; Write_formatted_output ]

let activity_description = function
  | Get_input_string -> "get input string"
  | Use_as_format -> "use the string as a format argument"
  | Write_formatted_output -> "write formatted output to a buffer"

let category_assigned = function
  | Get_input_string -> Vulndb.Category.Input_validation_error
  | Use_as_format -> Vulndb.Category.Access_validation_error
  | Write_formatted_output -> Vulndb.Category.Boundary_condition_error

let bugtraq_example = function
  | Get_input_string -> 1387
  | Use_as_format -> 2210
  | Write_formatted_output -> 2264

let pfsm_name = function
  | Get_input_string -> "pFSM-get"
  | Use_as_format -> "pFSM-fmt"
  | Write_formatted_output -> "pFSM-out"

(* The formatted output's length: directives expand (conservatively,
   %x may render up to 8 characters for 2 bytes of directive). *)
let expanded_length s =
  String.length s + (8 * List.length (Pfsm.Strcodec.format_directives s))

let model () =
  let get =
    Pfsm.Checks.pfsm ~name:(pfsm_name Get_input_string) ~check:"format_free"
      ~activity:(activity_description Get_input_string)
      Pfsm.Checks.format_free
  in
  let fmt =
    Pfsm.Checks.pfsm ~name:(pfsm_name Use_as_format) ~check:"format_free"
      ~activity:(activity_description Use_as_format)
      (* The spec at the use site: the string handed to *printf as the
         format must carry no directives (a constant format). *)
      Pfsm.Checks.format_free
  in
  let out =
    Pfsm.Checks.pfsm ~name:(pfsm_name Write_formatted_output)
      ~check:"length_fits_buffer"
      ~activity:(activity_description Write_formatted_output)
      (Pfsm.Checks.length_fits_buffer ~size_key:"output.buffer.size")
  in
  let record env obj =
    (Pfsm.Env.add_str "input" (Pfsm.Value.as_str obj) env, obj)
  in
  let expand env obj =
    let s = Pfsm.Value.as_str obj in
    let rendered = Pfsm.Value.Str (String.make (min 4096 (expanded_length s)) 'o') in
    (env, rendered)
  in
  let out_effect env =
    let s = Pfsm.Env.get_str "input" env in
    let overran =
      expanded_length s > Pfsm.Env.get_int "output.buffer.size" env
    in
    let wrote_n = List.mem "%n" (Pfsm.Strcodec.format_directives s) in
    Pfsm.Env.add_bool "return.unchanged" (not (overran || wrote_n)) env
  in
  let op1 =
    Pfsm.Operation.make ~name:"Format the client string"
      ~object_name:"the client string"
      ~effect_label:"%n and expansion may corrupt memory around the output buffer"
      ~effect_:out_effect
      [ Pfsm.Operation.stage ~action:record get;
        Pfsm.Operation.stage ~action:expand
          ~action_label:"render directives against the varargs cursor" fmt;
        Pfsm.Operation.stage ~action_label:"store the rendered output" out ]
  in
  let ret =
    Pfsm.Checks.pfsm ~name:"pFSM-ret" ~check:"reference_unchanged"
      ~activity:"return from the logging function"
      (Pfsm.Checks.reference_unchanged ~flag:"return.unchanged")
  in
  let ret_effect env =
    Pfsm.Env.add_bool "attacker_code_executed"
      (not (Pfsm.Env.flag "return.unchanged" env))
      env
  in
  let op2 =
    Pfsm.Operation.make ~name:"Return from the logging function"
      ~object_name:"the saved return address"
      ~effect_label:"control transfers to the attacker-written address"
      ~effect_:ret_effect
      [ Pfsm.Operation.stage ~action_label:"ret" ret ]
  in
  Pfsm.Model.make
    ~name:"Generic format string exploitation pattern (Section 3.2)"
    ~description:
      "One mechanism, three elementary activities: the format-string ambiguity \
       family (#1387 / #2210 / #2264) as a single chain."
    [ Pfsm.Model.bind
        ~input:(fun env -> Pfsm.Env.get "input.str" env)
        ~input_label:"the client string" op1;
      Pfsm.Model.bind ~input:(fun _ -> Pfsm.Value.Unit)
        ~input_label:"the saved return address" op2 ]

let scenario s =
  Pfsm.Env.empty
  |> Pfsm.Env.add_str "input.str" s
  |> Pfsm.Env.add_int "output.buffer.size" 128

let exploit_scenario = scenario ("USER " ^ Machine.Payload.repeat "%8x" 20 ^ "%n")

let benign_scenario = scenario "USER anonymous"

let ambiguity_rows () =
  let trace = Pfsm.Model.run (model ()) ~env:exploit_scenario in
  let hidden_at name =
    List.exists
      (fun s ->
         s.Pfsm.Trace.pfsm.Pfsm.Primitive.name = name
         && s.Pfsm.Trace.verdict.Pfsm.Primitive.hidden)
      trace.Pfsm.Trace.steps
  in
  List.map
    (fun a -> (a, bugtraq_example a, category_assigned a, hidden_at (pfsm_name a)))
    activities
