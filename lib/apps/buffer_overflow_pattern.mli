(** The generic buffer-overflow exploitation pattern of Section 3.2.

    The paper's second Observation-1 family: the same stack-overflow
    mechanism was filed as input validation error when pinned at
    "get input string" (#6157), boundary condition error at "copy the
    string to a buffer" (#5960), and failure to handle exceptional
    conditions at "handle data following the buffer" (#4479). *)

type activity = Get_input_string | Copy_to_buffer | Handle_following_data

val activities : activity list

val activity_description : activity -> string

val category_assigned : activity -> Vulndb.Category.t

val bugtraq_example : activity -> int

val buffer_size : int
(** 200 — GHTTPD's buffer, the family's canonical size. *)

val model : unit -> Pfsm.Model.t
(** Scenario key: ["input.str"]. *)

val exploit_scenario : Pfsm.Env.t

val benign_scenario : Pfsm.Env.t

val ambiguity_rows : unit -> (activity * int * Vulndb.Category.t * bool) list
