(** xterm log-file race condition — Figure 5.

    xterm (setuid root) logs user Tom's messages to [/usr/tom/x].  It
    checks that Tom may write the file, then opens it {e as root}.
    Between check and open, Tom can replace the file with a symlink
    to [/etc/passwd]; the root-privileged open follows the link and
    Tom's "log data" lands in the password file.

    The race is explored {e exhaustively}: every interleaving of the
    logger's [check; open; write] with the attacker's
    [unlink; symlink] is executed on a fresh filesystem. *)

type config = { open_nofollow : bool (** protection: refuse to open a symlink *) }

type state

val log_file : string

val target_file : string

val tom : Osmodel.User.t

val fresh_state : unit -> state

val logger_steps : config -> state Osmodel.Scheduler.step list

val attacker_steps : state Osmodel.Scheduler.step list

val bystander_steps : state Osmodel.Scheduler.step list
(** An unrelated root daemon on [/var/cron/log] — footprint-disjoint
    from the race, so partial-order reduction prunes its
    interleavings and its stat-then-read pair must not be flagged. *)

val passwd_corrupted : state -> Outcome.t option
(** [Some (File_overwritten ...)] when Tom's data reached
    [/etc/passwd]. *)

val run_race : config -> Outcome.t Osmodel.Scheduler.verdict list
(** All interleavings on which the attack wins (empty = foiled). *)

val total_interleavings : int

val model : unit -> Pfsm.Model.t
(** Figure 5's two pFSMs.  Scenario keys: ["tom.can_write"],
    ["file.is_symlink"], ["binding.unchanged"]. *)

val race_scenario : Pfsm.Env.t
(** The schedule in which the attacker swaps the file inside the
    window. *)

val benign_scenario : Pfsm.Env.t
