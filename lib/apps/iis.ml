module Fs = Osmodel.Filesystem
module P = Pfsm.Predicate

type config = { single_decode : bool }

let vulnerable = { single_decode = false }

let scripts_root = "/wwwroot/scripts"

let attack_path = "..%252f..%252fwinnt%252fsystem32%252fcmd.exe"

let benign_path = "hello.exe"

type t = {
  fs : Fs.t;
  config : config;
}

let setup ?(config = vulnerable) () =
  let fs = Fs.create () in
  let mode = Osmodel.Perm.of_octal 0o755 in
  Fs.mkfile fs (scripts_root ^ "/hello.exe") ~owner:Osmodel.User.Root ~mode "CGI";
  Fs.mkfile fs "/winnt/system32/cmd.exe" ~owner:Osmodel.User.Root ~mode "SHELL";
  { fs; config }

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub haystack i nn = needle || at (i + 1)) in
  nn > 0 && at 0

let handle_request t path =
  Outcome.guard @@ fun () ->
  let once = Pfsm.Strcodec.percent_decode path in
  if contains ~needle:"../" once then
    Outcome.Refused "request path contains \"../\""
  else
    let effective =
      if t.config.single_decode then once else Pfsm.Strcodec.percent_decode once
    in
    let target = Fs.resolve t.fs (scripts_root ^ "/" ^ effective) in
    let inside =
      String.length target >= String.length scripts_root
      && String.sub target 0 (String.length scripts_root) = scripts_root
    in
    match Fs.content t.fs target with
    | exception Fs.Fs_error _ -> Outcome.Benign (Printf.sprintf "404 Not Found: %s" target)
    | _ when inside -> Outcome.Benign (Printf.sprintf "executed CGI %s" target)
    | _ ->
        Outcome.Code_execution
          (Printf.sprintf "arbitrary program %s (outside %s)" target scripts_root)

(* ------------------------------------------------------------------ *)
(* The Figure-7 FSM model.                                             *)

let scenario ~path = Pfsm.Env.add_str "request.path" path Pfsm.Env.empty

let model t =
  let decodes = if t.config.single_decode then 1 else 2 in
  (* The file resides under /wwwroot/scripts iff the path, after all
     the decoding the implementation performs, is free of "../". *)
  let spec = P.Not (P.Contains (P.Decode (decodes, P.Self), "../")) in
  let impl = P.Not (P.Contains (P.Decode (1, P.Self), "../")) in
  let pfsm1 =
    Pfsm.Primitive.make ~name:"pFSM1" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"get the filename of a CGI program; check it stays in /wwwroot/scripts"
      ~spec ~impl
  in
  let exec_effect env =
    let path = Pfsm.Env.get_str "request.path" env in
    let escaped =
      contains ~needle:"../" (Pfsm.Strcodec.percent_decode_n decodes path)
    in
    Pfsm.Env.add_bool "arbitrary_program_executed" escaped env
  in
  let op =
    Pfsm.Operation.make ~name:"Decode and execute the requested CGI filename"
      ~object_name:"the CGI filename"
      ~effect_label:
        "Execute arbitrary program, even outside /wwwroot/scripts/, because \"../\" \
         appears after the second decoding"
      ~effect_:exec_effect
      [ Pfsm.Operation.stage
          ~action_label:"decode filename a second time; execute the target CGI program"
          pfsm1 ]
  in
  Pfsm.Model.make ~name:"IIS Decodes Filenames Superfluously after Applying Security Checks"
    ~bugtraq_id:2708
    ~description:
      "IIS checks for \"../\" after the first URL decoding but decodes a second time \
       before use; \"..%252f\" passes the check and becomes \"../\"."
    [ Pfsm.Model.bind
        ~input:(fun env -> Pfsm.Env.get "request.path" env)
        ~input_label:"the requested CGI path" op ]
