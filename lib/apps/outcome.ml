type t =
  | Benign of string
  | Refused of string
  | Protection_triggered of string
  | Code_execution of string
  | Arbitrary_write of { addr : int; value : int }
  | Memory_corruption of string
  | File_overwritten of { path : string; data : string }
  | Info_leak of string
  | Crash of string
  | Resource_fault of Fault.Condition.t

type verdict = Compromised | Blocked | Normal

let verdict = function
  | Benign _ -> Normal
  | Refused _ | Protection_triggered _ | Resource_fault _ -> Blocked
  | Code_execution _ | Arbitrary_write _ | Memory_corruption _ | File_overwritten _
  | Info_leak _ | Crash _ -> Compromised

let is_compromised t = verdict t = Compromised

let verdict_to_string = function
  | Compromised -> "COMPROMISED"
  | Blocked -> "blocked"
  | Normal -> "normal"

let pp ppf = function
  | Benign msg -> Format.fprintf ppf "benign: %s" msg
  | Refused msg -> Format.fprintf ppf "refused: %s" msg
  | Protection_triggered msg -> Format.fprintf ppf "protection triggered: %s" msg
  | Code_execution label -> Format.fprintf ppf "CODE EXECUTION: %s" label
  | Arbitrary_write { addr; value } ->
      Format.fprintf ppf "ARBITRARY WRITE: mem[0x%08x] <- 0x%08x" addr value
  | Memory_corruption msg -> Format.fprintf ppf "MEMORY CORRUPTION: %s" msg
  | File_overwritten { path; data } ->
      Format.fprintf ppf "FILE OVERWRITTEN: %s <- %S" path data
  | Info_leak leaked -> Format.fprintf ppf "INFO LEAK: %s" leaked
  | Crash msg -> Format.fprintf ppf "CRASH: %s" msg
  | Resource_fault c -> Format.fprintf ppf "RESOURCE FAULT: %a" Fault.Condition.pp c

let to_string t = Format.asprintf "%a" pp t

let guard f =
  match Fault.Condition.protect f with
  | Ok outcome -> outcome
  | Error c -> Resource_fault c
