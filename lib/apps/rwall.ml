module Fs = Osmodel.Filesystem
module Sched = Osmodel.Scheduler
module E = Osmodel.Effect
module P = Pfsm.Predicate

type config = {
  utmp_world_writable : bool;
  terminal_check : bool;
}

let vulnerable = { utmp_world_writable = true; terminal_check = false }

type t = {
  fs : Fs.t;
  config : config;
}

let utmp_path = "/etc/utmp"

let attacker = Osmodel.User.Regular "mallory"

let setup ?(config = vulnerable) () =
  let fs = Fs.create () in
  let utmp_mode =
    Osmodel.Perm.of_octal (if config.utmp_world_writable then 0o666 else 0o644)
  in
  Fs.mkfile fs utmp_path ~owner:Osmodel.User.Root ~mode:utmp_mode "pts/25\n";
  Fs.mkfile fs "/etc/passwd" ~owner:Osmodel.User.Root
    ~mode:(Osmodel.Perm.of_octal 0o644) "root:x:0:0::/root:/bin/sh\n";
  Fs.mkfile fs "/dev/pts/25" ~owner:attacker ~mode:(Osmodel.Perm.of_octal 0o620)
    ~kind:Fs.Terminal "";
  { fs; config }

let fs t = t.fs

let add_utmp_entry t ~as_user entry =
  Outcome.guard @@ fun () ->
  if not (Fs.access_write t.fs utmp_path ~as_user) then
    Outcome.Refused "no write permission on /etc/utmp"
  else begin
    let fd = Fs.open_write t.fs utmp_path ~as_user in
    Fs.append t.fs fd (entry ^ "\n");
    Outcome.Benign (Printf.sprintf "added utmp entry %S" entry)
  end

let utmp_entries t =
  Fs.content t.fs utmp_path
  |> String.split_on_char '\n'
  |> List.filter (fun line -> line <> "")

let write_to_entry t ~message entry =
  Outcome.guard @@ fun () ->
  (* rwalld resolves entries relative to /dev, so "../etc/passwd"
     escapes to the real password file. *)
  let path = Fs.resolve t.fs ~cwd:"/dev" entry in
  match Fs.kind_of t.fs path with
  | exception Fs.Fs_error e -> Outcome.Crash (Fs.error_message e)
  | kind ->
      if t.config.terminal_check && kind <> Fs.Terminal then
        Outcome.Refused (Printf.sprintf "%s is not a terminal" path)
      else begin
        let fd = Fs.open_write t.fs path ~as_user:Osmodel.User.Root in
        Fs.append t.fs fd message;
        match kind with
        | Fs.Terminal -> Outcome.Benign (Printf.sprintf "message written to %s" path)
        | Fs.Regular_file -> Outcome.File_overwritten { path; data = message }
      end

let broadcast t ~message = List.map (write_to_entry t ~message) (utmp_entries t)

let worst outcomes =
  let rank o =
    match Outcome.verdict o with
    | Outcome.Compromised -> 2
    | Outcome.Blocked -> 1
    | Outcome.Normal -> 0
  in
  match outcomes with
  | [] -> Outcome.Benign "nothing happened"
  | o :: rest -> List.fold_left (fun acc x -> if rank x > rank acc then x else acc) o rest

let run_attack t ~message =
  Outcome.guard @@ fun () ->
  match add_utmp_entry t ~as_user:attacker "../etc/passwd" with
  | (Outcome.Refused _ | Outcome.Resource_fault _) as blocked -> blocked
  | _ -> worst (broadcast t ~message)

(* ------------------------------------------------------------------ *)
(* Step-level race system: rwalld's entry handling as atomic steps.    *)

type race_config = { recheck_at_open : bool }

let vulnerable_race = { recheck_at_open = false }

let pts_path = "/dev/pts/25"

let passwd_path = "/etc/passwd"

let syslog_path = "/var/adm/messages"

let race_message = "rwall broadcast\n"

type race_state = {
  rfs : Fs.t;
  mutable entry : string option;
  mutable tty_ok : bool;
  mutable syslog_fd : Fs.fd option;
  mutable passwd_before : string;
}

let race_fresh () =
  let t = setup () in
  { rfs = t.fs; entry = None; tty_ok = false; syslog_fd = None;
    passwd_before = Fs.content t.fs passwd_path }

(* rwalld resolves the entry relative to /dev; once mallory has
   symlinked the terminal onto /etc/passwd, resolution reaches the
   password file — so every resolving step also declares the attr
   read it would then perform there. *)
let daemon_steps config =
  [ Sched.step_e "rwalld: read /etc/utmp"
      ~effects:[ E.reads (E.Path_attr utmp_path); E.reads (E.Path utmp_path) ]
      (fun st ->
        match String.split_on_char '\n' (Fs.read st.rfs utmp_path ~as_user:Osmodel.User.Root) with
        | entry :: _ when entry <> "" -> st.entry <- Some entry
        | _ -> st.entry <- None);
    Sched.step_e "rwalld: stat entry (terminal check)"
      ~effects:[ E.reads (E.Path_attr pts_path); E.reads (E.Path_attr passwd_path) ]
      (fun st ->
        match st.entry with
        | None -> ()
        | Some e ->
            let path = Fs.resolve st.rfs ~cwd:"/dev" e in
            st.tty_ok <- Fs.kind_of st.rfs path = Fs.Terminal);
    Sched.step_e "rwalld: open entry and write message as root"
      ~effects:[ E.reads (E.Path_attr pts_path); E.reads (E.Path_attr passwd_path);
                 E.creates (E.Path pts_path); E.writes (E.Path pts_path);
                 E.writes (E.Path passwd_path) ]
      (fun st ->
        match st.entry with
        | None -> ()
        | Some e ->
            if st.tty_ok then begin
              let path = Fs.resolve st.rfs ~cwd:"/dev" e in
              if config.recheck_at_open && Fs.kind_of st.rfs path <> Fs.Terminal then ()
              else begin
                let fd = Fs.open_write st.rfs path ~as_user:Osmodel.User.Root in
                Fs.append st.rfs fd race_message
              end
            end) ]

let mallory_steps =
  [ Sched.step_e "mallory: unlink /dev/pts/25"
      ~effects:[ E.unlinks (E.Path pts_path) ]
      (fun st -> Fs.unlink st.rfs pts_path ~as_user:attacker);
    Sched.step_e "mallory: symlink /dev/pts/25 -> /etc/passwd"
      ~effects:[ E.creates (E.Path pts_path) ]
      (fun st -> Fs.symlink st.rfs ~link:pts_path ~target:passwd_path) ]

(* syslogd churning on its own file — footprint-disjoint from the
   race, pruned by partial-order reduction, never flagged. *)
let race_bystander_steps =
  [ Sched.step_e "syslogd: open /var/adm/messages"
      ~effects:[ E.reads (E.Path_attr syslog_path); E.creates (E.Path syslog_path) ]
      (fun st ->
        st.syslog_fd <- Some (Fs.open_write st.rfs syslog_path ~as_user:Osmodel.User.Root));
    Sched.step_e "syslogd: append line"
      ~effects:[ E.writes (E.Path syslog_path) ]
      (fun st ->
        match st.syslog_fd with
        | Some fd -> Fs.append st.rfs fd "kernel: up\n"
        | None -> ());
    Sched.step_e "syslogd: stat /var/adm/messages"
      ~effects:[ E.reads (E.Path_attr syslog_path) ]
      (fun st -> ignore (Fs.exists st.rfs syslog_path));
    Sched.step_e "syslogd: read /var/adm/messages"
      ~effects:[ E.reads (E.Path_attr syslog_path); E.reads (E.Path syslog_path) ]
      (fun st -> ignore (Fs.read st.rfs syslog_path ~as_user:Osmodel.User.Root));
    Sched.step_e "syslogd: unlink /var/adm/messages"
      ~effects:[ E.unlinks (E.Path syslog_path) ]
      (fun st ->
        st.syslog_fd <- None;
        Fs.unlink st.rfs syslog_path ~as_user:Osmodel.User.Root) ]

let race_corrupted st =
  if Fs.content st.rfs passwd_path <> st.passwd_before then
    Some (Outcome.File_overwritten { path = passwd_path; data = race_message })
  else None

(* ------------------------------------------------------------------ *)
(* The Figure-6 FSM model.                                             *)

let attack_scenario =
  Pfsm.Env.empty
  |> Pfsm.Env.add_bool "user.is_root" false
  |> Pfsm.Env.add_str "target.kind" "regular file"

let benign_scenario =
  Pfsm.Env.empty
  |> Pfsm.Env.add_bool "user.is_root" true
  |> Pfsm.Env.add_str "target.kind" "terminal"

let model t =
  let root_spec = P.Env_flag "user.is_root" in
  let pfsm1 =
    Pfsm.Primitive.make ~name:"pFSM1" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"user request of writing /etc/utmp"
      ~spec:root_spec
      ~impl:(if t.config.utmp_world_writable then P.True else root_spec)
  in
  let utmp_effect env =
    Pfsm.Env.add_bool "utmp_contains_passwd_entry"
      (not (Pfsm.Env.flag "user.is_root" env))
      env
  in
  let op1 =
    Pfsm.Operation.make ~name:"Write to /etc/utmp"
      ~object_name:"the file /etc/utmp"
      ~effect_label:"\"../etc/passwd\" entry added to /etc/utmp"
      ~effect_:utmp_effect
      [ Pfsm.Operation.stage ~action_label:"open /etc/utmp for the user" pfsm1 ]
  in
  let terminal_spec =
    P.Str_eq (P.Env_val "target.kind", P.Lit (Pfsm.Value.Str "terminal"))
  in
  let pfsm2 =
    Pfsm.Primitive.make ~name:"pFSM2" ~kind:Pfsm.Taxonomy.Object_type_check
      ~activity:"get a file from /etc/utmp; write user message to the terminal or file"
      ~spec:terminal_spec
      ~impl:(if t.config.terminal_check then terminal_spec else P.True)
  in
  let write_effect env =
    Pfsm.Env.add_bool "passwd_overwritten"
      (not
         (String.equal (Pfsm.Env.get_str "target.kind" env) "terminal"))
      env
  in
  let op2 =
    Pfsm.Operation.make ~name:"Rwall daemon writes messages"
      ~object_name:"the target file named by the utmp entry"
      ~effect_label:"Rwall daemon writes user message to regular file /etc/passwd"
      ~effect_:write_effect
      [ Pfsm.Operation.stage ~action_label:"write message" pfsm2 ]
  in
  Pfsm.Model.make ~name:"Solaris Rwall Arbitrary File Corruption"
    ~description:
      "A world-writable /etc/utmp lets a regular user add \"../etc/passwd\"; rwalld \
       writes its broadcast message to every entry without checking the file type."
    [ Pfsm.Model.bind
        ~input:(fun _ -> Pfsm.Value.Str utmp_path)
        ~input_label:"the file /etc/utmp" op1;
      Pfsm.Model.bind
        ~input:(fun env -> Pfsm.Env.get "target.kind" env)
        ~input_label:"the file named by the utmp entry" op2 ]
