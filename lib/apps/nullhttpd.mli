(** Null HTTPD heap overflow — Figure 4, Bugtraq #5774 and the
    authors' new discovery #6255.

    [ReadPOSTData] (Figure 4b) allocates
    [PostData = calloc(contentLen + 1024, 1)] and fills it from the
    socket in 1024-byte [recv] chunks with the loop condition
    [while ((rc == 1024) || (x < contentLen))].

    Two independent flaws live here:
    {ul
    {- {b #5774} (version 0.5): [contentLen] is not checked for
       negativity, so [contentLen = -800] yields a 224-byte buffer
       while at least 1024 bytes are copied;}
    {- {b #6255} (still in 0.5.1, found while building this very
       model): the [||] should be [&&] — with a {e correct}
       [contentLen] the loop keeps reading full chunks until the
       peer stops sending, however long that is.}}

    Overflowing [PostData] rewrites the following free chunk's
    [fd]/[bk]; freeing [PostData] then unlinks that chunk and
    performs the attacker's arbitrary write onto the GOT entry of
    [free]; the next [free()] call executes Mcode. *)

type version = V0_5 | V0_5_1

type config = {
  version : version;       (** 0.5.1 adds the negative-contentLen check *)
  loop_fixed : bool;       (** the #6255 fix: [&&] instead of [||] *)
  safe_unlink : bool;      (** heap integrity check (later glibc) *)
}

val vulnerable_v0_5 : config

val v0_5_1 : config
(** #5774 fixed, #6255 still present. *)

val fully_fixed : config

type t

val setup : ?config:config -> ?aslr_seed:int -> unit -> t

val proc : t -> Machine.Process.t

val config : t -> config

val mcode_addr : t -> Machine.Addr.t

val free_slot : t -> Machine.Addr.t
(** Address of the GOT slot of [free] ([&addr_free]). *)

val usable_for : content_len:int -> int
(** Usable bytes of the buffer [calloc(contentLen + 1024)] yields. *)

val predicted_postdata : t -> Machine.Addr.t
(** Where [PostData] will land (the allocator is deterministic). *)

val handle_post : t -> content_len:int -> body:string -> Outcome.t
(** The full request lifecycle: (0.5.1 only) contentLen check,
    [ReadPOSTData], [free(PostData)], then the server's next
    [free()] call — each [free] dispatched through the GOT. *)

val model : t -> Pfsm.Model.t
(** Figure 4's cascade of three operations / four pFSMs.  Scenario
    keys: ["request.contentLen"], ["request.body"]. *)

val scenario : content_len:int -> body:string -> Pfsm.Env.t

val benign_scenario : Pfsm.Env.t
