module Fs = Osmodel.Filesystem
module Sched = Osmodel.Scheduler
module E = Osmodel.Effect
module P = Pfsm.Predicate

type config = { open_nofollow : bool }

let log_file = "/usr/tom/x"

let target_file = "/etc/passwd"

let cron_log = "/var/cron/log"

let tom = Osmodel.User.Regular "tom"

let log_data = "tom-chosen log line\n"

type state = {
  fs : Fs.t;
  mutable check_ok : bool;
  mutable fd : Fs.fd option;
  mutable cron_fd : Fs.fd option;
  mutable passwd_before : string;
}

let fresh_state () =
  let fs = Fs.create () in
  Fs.mkfile fs target_file ~owner:Osmodel.User.Root ~mode:(Osmodel.Perm.of_octal 0o644)
    "root:x:0:0::/root:/bin/sh\n";
  Fs.mkfile fs log_file ~owner:tom ~mode:(Osmodel.Perm.of_octal 0o644) "";
  { fs; check_ok = false; fd = None; cron_fd = None;
    passwd_before = Fs.content fs target_file }

(* Footprints over-approximate: path resolution can follow the
   attacker's symlink, so every step that resolves [log_file] also
   declares the attr read it would then perform on [target_file]. *)
let logger_steps config =
  [ Sched.step_e "xterm: access(log, W_OK) as tom"
      ~effects:[ E.reads (E.Path_attr log_file); E.reads (E.Path_attr target_file) ]
      (fun st ->
        st.check_ok <-
          Fs.access_write st.fs log_file ~as_user:tom
          && not (Fs.is_symlink st.fs log_file));
    Sched.step_e "xterm: open(log) as root"
      ~effects:[ E.reads (E.Path_attr log_file); E.creates (E.Path log_file);
                 E.writes (E.Path log_file); E.writes (E.Path target_file) ]
      (fun st ->
        if st.check_ok then
          if config.open_nofollow && Fs.is_symlink st.fs log_file then st.check_ok <- false
          else st.fd <- Some (Fs.open_write st.fs log_file ~as_user:Osmodel.User.Root));
    Sched.step_e "xterm: write log data"
      ~effects:[ E.writes (E.Path log_file); E.writes (E.Path target_file) ]
      (fun st ->
        match st.fd with
        | Some fd -> Fs.append st.fs fd log_data
        | None -> ()) ]

let attacker_steps =
  [ Sched.step_e "tom: unlink /usr/tom/x"
      ~effects:[ E.unlinks (E.Path log_file) ]
      (fun st -> Fs.unlink st.fs log_file ~as_user:tom);
    Sched.step_e "tom: symlink /usr/tom/x -> /etc/passwd"
      ~effects:[ E.creates (E.Path log_file) ]
      (fun st -> Fs.symlink st.fs ~link:log_file ~target:target_file) ]

(* An unrelated root daemon churning on its own log: every step is
   footprint-disjoint from the race, so partial-order reduction prunes
   its interleavings and the TOCTTOU detector must stay silent on its
   stat-then-read pair (no foreign writer on [cron_log]). *)
let bystander_steps =
  [ Sched.step_e "cron: open /var/cron/log"
      ~effects:[ E.reads (E.Path_attr cron_log); E.creates (E.Path cron_log) ]
      (fun st ->
        st.cron_fd <- Some (Fs.open_write st.fs cron_log ~as_user:Osmodel.User.Root));
    Sched.step_e "cron: append heartbeat"
      ~effects:[ E.writes (E.Path cron_log) ]
      (fun st ->
        match st.cron_fd with
        | Some fd -> Fs.append st.fs fd "heartbeat\n"
        | None -> ());
    Sched.step_e "cron: chmod 0600 /var/cron/log"
      ~effects:[ E.reads (E.Path_attr cron_log); E.chmods (E.Path_attr cron_log) ]
      (fun st -> Fs.chmod st.fs cron_log (Osmodel.Perm.of_octal 0o600));
    Sched.step_e "cron: stat /var/cron/log"
      ~effects:[ E.reads (E.Path_attr cron_log) ]
      (fun st -> ignore (Fs.exists st.fs cron_log));
    Sched.step_e "cron: read /var/cron/log"
      ~effects:[ E.reads (E.Path_attr cron_log); E.reads (E.Path cron_log) ]
      (fun st -> ignore (Fs.read st.fs cron_log ~as_user:Osmodel.User.Root));
    Sched.step_e "cron: unlink /var/cron/log"
      ~effects:[ E.unlinks (E.Path cron_log) ]
      (fun st ->
        st.cron_fd <- None;
        Fs.unlink st.fs cron_log ~as_user:Osmodel.User.Root) ]

let passwd_corrupted st =
  let now = Fs.content st.fs target_file in
  if now <> st.passwd_before then
    Some (Outcome.File_overwritten { path = target_file; data = log_data })
  else None

let run_race config =
  (Sched.explore ~init:fresh_state ~a:(logger_steps config) ~b:attacker_steps
     ~check:passwd_corrupted ())
    .Sched.verdicts

let total_interleavings = Sched.interleaving_count 3 2

(* ------------------------------------------------------------------ *)
(* The Figure-5 FSM model.                                             *)

let race_scenario =
  Pfsm.Env.empty
  |> Pfsm.Env.add_bool "tom.can_write" true
  |> Pfsm.Env.add_bool "file.is_symlink" false
  |> Pfsm.Env.add_bool "binding.unchanged" false

let benign_scenario =
  Pfsm.Env.empty
  |> Pfsm.Env.add_bool "tom.can_write" true
  |> Pfsm.Env.add_bool "file.is_symlink" false
  |> Pfsm.Env.add_bool "binding.unchanged" true

let model () =
  let perm_spec =
    P.And (P.Env_flag "tom.can_write", P.Not (P.Env_flag "file.is_symlink"))
  in
  let pfsm1 =
    Pfsm.Primitive.make ~name:"pFSM1" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"get the filename of Tom's log file; check Tom's write permission"
      ~spec:perm_spec ~impl:perm_spec
  in
  let binding_spec = P.Env_flag "binding.unchanged" in
  let pfsm2 =
    Pfsm.Primitive.make ~name:"pFSM2" ~kind:Pfsm.Taxonomy.Reference_consistency_check
      ~activity:"open /usr/tom/x with write permission"
      ~spec:binding_spec ~impl:P.True
  in
  let open_effect env =
    Pfsm.Env.add_bool "passwd_overwritten"
      (not (Pfsm.Env.flag "binding.unchanged" env))
      env
  in
  let op =
    Pfsm.Operation.make ~name:"Writing the log file of user Tom"
      ~object_name:"the log file /usr/tom/x"
      ~effect_label:"Tom appends his own data to the file /etc/passwd"
      ~effect_:open_effect
      [ Pfsm.Operation.stage ~action_label:"passed permission check" pfsm1;
        Pfsm.Operation.stage ~action_label:"open and write" pfsm2 ]
  in
  Pfsm.Model.make ~name:"xterm Log File Race Condition"
    ~description:
      "Between xterm's write-permission check on the user log file and the \
       root-privileged open, the user can replace the file with a symlink to \
       /etc/passwd (time-of-check-to-time-of-use)."
    [ Pfsm.Model.bind
        ~input:(fun _ -> Pfsm.Value.Str log_file)
        ~input_label:"the log filename" op ]
