(** The generic format-string exploitation pattern of Section 3.2.

    The paper's third Observation-1 family: format string flaws were
    filed as input validation error at "get input string" (#1387,
    wu-ftpd), access validation error at "use the string as a format
    argument" (#2210, splitvt), and boundary condition error at
    "write formatted output to a buffer" (#2264, icecast
    print_client). *)

type activity = Get_input_string | Use_as_format | Write_formatted_output

val activities : activity list

val activity_description : activity -> string

val category_assigned : activity -> Vulndb.Category.t

val bugtraq_example : activity -> int

val model : unit -> Pfsm.Model.t
(** Scenario key: ["input.str"]. *)

val exploit_scenario : Pfsm.Env.t

val benign_scenario : Pfsm.Env.t

val ambiguity_rows : unit -> (activity * int * Vulndb.Category.t * bool) list
