(** What a simulated run of a vulnerable application did.

    Outcomes fold into three verdicts used by the model-vs-simulation
    consistency check: {e compromised} (the exploit succeeded or
    memory/files were corrupted), {e blocked} (a check or protection
    stopped it), and {e normal} (benign completion). *)

type t =
  | Benign of string
  | Refused of string                       (** an input check rejected it *)
  | Protection_triggered of string          (** canary, safe unlink, GOT audit... *)
  | Code_execution of string                (** attacker code ran (label) *)
  | Arbitrary_write of { addr : int; value : int }
  | Memory_corruption of string
  | File_overwritten of { path : string; data : string }
  | Info_leak of string
  | Crash of string
  | Resource_fault of Fault.Condition.t
      (** the simulated environment failed underneath the program
          (injected heap/socket/fs fault) — degraded, not exploited *)

type verdict = Compromised | Blocked | Normal

val verdict : t -> verdict

val is_compromised : t -> bool

val verdict_to_string : verdict -> string

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val guard : (unit -> t) -> t
(** Run an app entry point, converting an escaped simulated fault
    ({!Fault.Condition.Simulated}) into {!Resource_fault} so injected
    faults surface as typed outcomes rather than raw exceptions. *)
