(** A printf-family interpreter over simulated memory — the engine of
    format-string vulnerabilities (#1480 rpc.statd).

    C's varargs have no count: each conversion directive pops the
    next 4-byte word from wherever the argument cursor points.  When
    attacker data is used {e as} the format string, [%x] walks the
    cursor down the stack (through the attacker's own bytes) and
    [%n] writes the number of characters output so far to the address
    the cursor yields — an arbitrary 4-byte write. *)

type result = {
  output : string;            (** rendered text, truncated to 4 KiB *)
  chars_written : int;        (** the true count [%n] would store *)
  writes : (Machine.Addr.t * int) list;
      (** every ([%n]) write performed: (address, value) *)
}

val interpret :
  Machine.Memory.t -> fmt:string -> arg_cursor:Machine.Addr.t -> result
(** Supported directives: [%d %u %x %X %c %s %n %hn %%], with
    optional decimal width (pad with spaces).  [%s] reads the
    NUL-terminated string at the popped address; [%n] stores
    [chars_written] at the popped address and [%hn] its low 16 bits —
    the pairwise primitive real exploits composed full addresses from
    (the writes go through {!Machine.Memory} and can fault). *)
