type activity = Get_input_string | Copy_to_buffer | Handle_following_data

let activities = [ Get_input_string; Copy_to_buffer; Handle_following_data ]

let activity_description = function
  | Get_input_string -> "get input string"
  | Copy_to_buffer -> "copy the string to a buffer"
  | Handle_following_data -> "handle data (e.g. return address) following the buffer"

let category_assigned = function
  | Get_input_string -> Vulndb.Category.Input_validation_error
  | Copy_to_buffer -> Vulndb.Category.Boundary_condition_error
  | Handle_following_data -> Vulndb.Category.Failure_to_handle_exceptional_conditions

let bugtraq_example = function
  | Get_input_string -> 6157
  | Copy_to_buffer -> 5960
  | Handle_following_data -> 4479

let buffer_size = 200

let pfsm_name = function
  | Get_input_string -> "pFSM-get"
  | Copy_to_buffer -> "pFSM-copy"
  | Handle_following_data -> "pFSM-ret"

let model () =
  let get =
    Pfsm.Checks.pfsm ~name:(pfsm_name Get_input_string) ~check:"length_within"
      ~activity:(activity_description Get_input_string)
      (Pfsm.Checks.length_within buffer_size)
  in
  let copy =
    Pfsm.Checks.pfsm ~name:(pfsm_name Copy_to_buffer) ~check:"length_fits_buffer"
      ~activity:(activity_description Copy_to_buffer)
      (Pfsm.Checks.length_fits_buffer ~size_key:"buffer.size")
  in
  let copy_effect env =
    let len = String.length (Pfsm.Env.get_str "input" env) in
    Pfsm.Env.add_bool "return.unchanged" (len <= buffer_size) env
  in
  let record env obj =
    (Pfsm.Env.add_str "input" (Pfsm.Value.as_str obj) env, obj)
  in
  let op1 =
    Pfsm.Operation.make ~name:"Manipulate the input string"
      ~object_name:"the input string"
      ~effect_label:"data following the buffer may now be attacker bytes"
      ~effect_:copy_effect
      [ Pfsm.Operation.stage ~action:record get;
        Pfsm.Operation.stage ~action_label:"strcpy into the buffer" copy ]
  in
  let ret =
    Pfsm.Checks.pfsm ~name:(pfsm_name Handle_following_data)
      ~check:"reference_unchanged"
      ~activity:(activity_description Handle_following_data)
      (Pfsm.Checks.reference_unchanged ~flag:"return.unchanged")
  in
  let ret_effect env =
    Pfsm.Env.add_bool "attacker_code_executed"
      (not (Pfsm.Env.flag "return.unchanged" env))
      env
  in
  let op2 =
    Pfsm.Operation.make ~name:"Return through the data following the buffer"
      ~object_name:"the saved return address"
      ~effect_label:"control transfers into the attacker's bytes"
      ~effect_:ret_effect
      [ Pfsm.Operation.stage ~action_label:"ret" ret ]
  in
  Pfsm.Model.make
    ~name:"Generic stack buffer overflow exploitation pattern (Section 3.2)"
    ~description:
      "One mechanism, three elementary activities: the buffer-overflow ambiguity \
       family (#6157 / #5960 / #4479) as a single chain."
    [ Pfsm.Model.bind
        ~input:(fun env -> Pfsm.Env.get "input.str" env)
        ~input_label:"the request string" op1;
      Pfsm.Model.bind ~input:(fun _ -> Pfsm.Value.Unit)
        ~input_label:"the saved return address" op2 ]

let scenario s =
  Pfsm.Env.empty
  |> Pfsm.Env.add_str "input.str" s
  |> Pfsm.Env.add_int "buffer.size" buffer_size

let exploit_scenario = scenario (String.make 480 'A')

let benign_scenario = scenario "GET /index.html"

let ambiguity_rows () =
  let trace = Pfsm.Model.run (model ()) ~env:exploit_scenario in
  let hidden_at name =
    List.exists
      (fun s ->
         s.Pfsm.Trace.pfsm.Pfsm.Primitive.name = name
         && s.Pfsm.Trace.verdict.Pfsm.Primitive.hidden)
      trace.Pfsm.Trace.steps
  in
  List.map
    (fun a -> (a, bugtraq_example a, category_assigned a, hidden_at (pfsm_name a)))
    activities
