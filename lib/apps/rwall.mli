(** Solaris rwall arbitrary file corruption — Figure 6 (CERT
    CA-1994-06).

    [/etc/utmp] lists logged-in users' terminals; rwalld (root)
    writes the broadcast message to [/dev/<entry>] for each entry.
    Two flaws compose: [/etc/utmp] is world-writable (a configuration
    flaw standing in for the missing root-privilege check of pFSM1),
    and rwalld never checks that the entry names a terminal (pFSM2) —
    so an entry ["../etc/passwd"] makes root write the attacker's
    "message" into the password file. *)

type config = {
  utmp_world_writable : bool;  (** the shipped misconfiguration *)
  terminal_check : bool;       (** pFSM2's fix: only write to terminals *)
}

val vulnerable : config

type t

val setup : ?config:config -> unit -> t

val fs : t -> Osmodel.Filesystem.t

val utmp_path : string

val attacker : Osmodel.User.t

val add_utmp_entry : t -> as_user:Osmodel.User.t -> string -> Outcome.t
(** Operation 1: append an entry to /etc/utmp. *)

val broadcast : t -> message:string -> Outcome.t list
(** Operation 2: rwalld writes [message] to every utmp entry; one
    outcome per entry. *)

val run_attack : t -> message:string -> Outcome.t
(** Add ["../etc/passwd"], broadcast, and report the worst outcome. *)

(** {2 Step-level race system}

    rwalld's handling of one utmp entry, decomposed into atomic steps
    (read utmp; stat the entry; open-and-write as root) racing an
    attacker who relinks the terminal onto [/etc/passwd] inside the
    stat/open window — the TOCTTOU reading of Figure 6. *)

type race_config = {
  recheck_at_open : bool;
      (** protection: re-stat at open, refuse non-terminals *)
}

val vulnerable_race : race_config

type race_state

val pts_path : string

val race_fresh : unit -> race_state

val daemon_steps : race_config -> race_state Osmodel.Scheduler.step list

val mallory_steps : race_state Osmodel.Scheduler.step list

val race_bystander_steps : race_state Osmodel.Scheduler.step list
(** syslogd on [/var/adm/messages] — footprint-disjoint noise. *)

val race_corrupted : race_state -> Outcome.t option
(** [Some (File_overwritten ...)] when the broadcast reached
    [/etc/passwd]. *)

val model : t -> Pfsm.Model.t
(** Figure 6.  Scenario keys: ["user.is_root"], ["target.kind"]. *)

val attack_scenario : Pfsm.Env.t

val benign_scenario : Pfsm.Env.t
