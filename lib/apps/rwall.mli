(** Solaris rwall arbitrary file corruption — Figure 6 (CERT
    CA-1994-06).

    [/etc/utmp] lists logged-in users' terminals; rwalld (root)
    writes the broadcast message to [/dev/<entry>] for each entry.
    Two flaws compose: [/etc/utmp] is world-writable (a configuration
    flaw standing in for the missing root-privilege check of pFSM1),
    and rwalld never checks that the entry names a terminal (pFSM2) —
    so an entry ["../etc/passwd"] makes root write the attacker's
    "message" into the password file. *)

type config = {
  utmp_world_writable : bool;  (** the shipped misconfiguration *)
  terminal_check : bool;       (** pFSM2's fix: only write to terminals *)
}

val vulnerable : config

type t

val setup : ?config:config -> unit -> t

val fs : t -> Osmodel.Filesystem.t

val utmp_path : string

val attacker : Osmodel.User.t

val add_utmp_entry : t -> as_user:Osmodel.User.t -> string -> Outcome.t
(** Operation 1: append an entry to /etc/utmp. *)

val broadcast : t -> message:string -> Outcome.t list
(** Operation 2: rwalld writes [message] to every utmp entry; one
    outcome per entry. *)

val run_attack : t -> message:string -> Outcome.t
(** Add ["../etc/passwd"], broadcast, and report the worst outcome. *)

val model : t -> Pfsm.Model.t
(** Figure 6.  Scenario keys: ["user.is_root"], ["target.kind"]. *)

val attack_scenario : Pfsm.Env.t

val benign_scenario : Pfsm.Env.t
