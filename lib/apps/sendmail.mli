(** Sendmail Debugging Function Signed Integer Overflow (Bugtraq
    #3163) — the running example of Sections 3-4 and Figure 3.

    [tTflag] parses the user's [-d x.i] debug option into integers
    [x] and [i] and writes [tTvect[x] = i].  The implementation
    checks only [x <= 100]; a huge decimal [str_x] wraps to a
    negative 32-bit [x], the write lands below [tTvect] — on the GOT
    entry of [setuid] — and the next [setuid()] call jumps to the
    attacker's code. *)

type config = {
  input_check : bool;   (** activity 1 fix: reject [str_x] not representable *)
  full_index_check : bool;  (** activity 2 fix: [0 <= x <= 100], not just [x <= 100] *)
  got_audit : bool;     (** activity 3 fix: verify the GOT entry before the call *)
}

val vulnerable : config
(** All three checks off — Sendmail as shipped. *)

type t

val setup : ?config:config -> ?aslr_seed:int -> unit -> t

val proc : t -> Machine.Process.t

val config : t -> config

val tTvect_addr : t -> Machine.Addr.t

val setuid_slot : t -> Machine.Addr.t
(** Address of the GOT slot of [setuid] — the exploit's target. *)

val exploit_index : t -> int
(** The (negative) [x] for which [tTvect + 4x] is exactly the
    [setuid] GOT slot. *)

val exploit_str_x : t -> string
(** A positive decimal whose 32-bit wrap equals {!exploit_index} —
    what the attacker actually types. *)

val mcode_addr : t -> Machine.Addr.t
(** Where the staged attacker code lives. *)

val tTflag : t -> str_x:string -> str_i:string -> Outcome.t
(** Operation 1: write debug level [i] to [tTvect\[x\]]. *)

val call_setuid : t -> Outcome.t
(** Operation 2: call [setuid] through the GOT. *)

val run_attack : t -> str_x:string -> str_i:string -> Outcome.t
(** The full exploit chain: [tTflag] then [call_setuid]; the first
    non-[Benign] step's outcome wins. *)

val model : t -> Pfsm.Model.t
(** Figure 3 as an executable model, with this instance's concrete
    addresses baked into the propagation-gate effects.  Scenario keys:
    ["input.str_x"], ["input.str_i"]. *)

val scenario : str_x:string -> str_i:string -> Pfsm.Env.t

val exploit_scenario : t -> Pfsm.Env.t

val benign_scenario : Pfsm.Env.t
