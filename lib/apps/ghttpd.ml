module P = Pfsm.Predicate

type config = {
  length_check : bool;
  protection : Machine.Stack.protection;
}

let vulnerable = { length_check = false; protection = Machine.Stack.No_protection }

let buffer_size = 200

type t = {
  proc : Machine.Process.t;
  config : config;
}

let setup ?(config = vulnerable) ?aslr_seed () =
  let proc = Machine.Process.create ~stack_protection:config.protection ?aslr_seed () in
  Machine.Process.register_function proc "main";
  Machine.Process.register_function proc "serveconnection";
  { proc; config }

let proc t = t.proc

(* The frames Log() runs under: serveconnection gives headroom above
   Log's return slot, so overlong copies corrupt the caller frame
   instead of faulting at the stack top. *)
let push_frames t =
  let stack = Machine.Process.stack t.proc in
  Machine.Stack.push_frame stack ~func:"serveconnection"
    ~ret_addr:(Machine.Process.code_addr t.proc "main")
    ~locals:[ ("conn", 64) ];
  Machine.Stack.push_frame stack ~func:"Log"
    ~ret_addr:(Machine.Process.code_addr t.proc "serveconnection")
    ~locals:[ ("buf", buffer_size) ]

let pop_all t =
  let stack = Machine.Process.stack t.proc in
  let status = Machine.Stack.pop_frame stack in
  ignore (Machine.Stack.pop_frame stack);
  status

let expected_buf_addr t =
  let stack = Machine.Process.stack t.proc in
  push_frames t;
  let addr = Machine.Stack.local_addr stack "buf" in
  ignore (pop_all t);
  addr

let distance_to_ret t =
  let stack = Machine.Process.stack t.proc in
  push_frames t;
  let d = Machine.Stack.distance_to_ret stack "buf" in
  ignore (pop_all t);
  d

let serve t ~request =
  Outcome.guard @@ fun () ->
  if t.config.length_check && String.length request > buffer_size then
    Outcome.Refused "request longer than 200 bytes"
  else begin
    push_frames t;
    let stack = Machine.Process.stack t.proc in
    let buf = Machine.Stack.local_addr stack "buf" in
    Machine.Process.mark_shellcode t.proc ~addr:buf ~len:(String.length request)
      ~label:"MCODE";
    match Machine.Cstring.strcpy (Machine.Process.mem t.proc) ~dst:buf request with
    | exception Machine.Memory.Fault { addr; _ } ->
        ignore (pop_all t);
        Outcome.Crash (Printf.sprintf "segfault writing stack at 0x%08x" addr)
    | () when
        t.config.protection = Machine.Stack.Split_stack
        && not (Machine.Stack.ret_addr_intact stack) ->
        ignore (pop_all t);
        Outcome.Protection_triggered "split stack ignored the corrupted return address"
    | () -> (
        match pop_all t with
        | Machine.Stack.Smashed_canary _ ->
            Outcome.Protection_triggered "StackGuard canary smashed"
        | Machine.Stack.Returned addr -> (
            match Machine.Process.classify_jump t.proc addr with
            | Machine.Process.Legit name ->
                Outcome.Benign (Printf.sprintf "Log returned to %s" name)
            | Machine.Process.Shellcode label -> Outcome.Code_execution label
            | Machine.Process.Wild a ->
                Outcome.Crash (Printf.sprintf "Log returned to 0x%08x" a)))
  end

(* ------------------------------------------------------------------ *)
(* Step-level system: one request round as scheduler steps — socket   *)
(* and memory effects only, a negative instance for the TOCTTOU       *)
(* detector.                                                           *)

module Sched = Osmodel.Scheduler
module E = Osmodel.Effect

type race_state = {
  srv : t;
  sock : Osmodel.Socket.t;
  mutable sent : bool;
  mutable request : string option;
  mutable outcome : Outcome.t option;
}

let race_payload = "GET /index.html"

let race_fresh () =
  { srv = setup ();
    sock = Osmodel.Socket.of_string race_payload;
    sent = false; request = None; outcome = None }

let server_steps =
  [ Sched.step_e "ghttpd: recv request line"
      ~effects:[ E.reads E.Socket_stream; E.writes (E.Mem "ghttpd.request") ]
      (fun st ->
        if st.sent then
          st.request <- Some (Osmodel.Socket.recv st.sock 4096));
    Sched.step_e "ghttpd: Log(request)"
      ~effects:[ E.reads (E.Mem "ghttpd.request"); E.writes (E.Mem "ghttpd.buf") ]
      (fun st ->
        match st.request with
        | Some request -> st.outcome <- Some (serve st.srv ~request)
        | None -> ()) ]

let client_steps =
  [ Sched.step_e "client: send request"
      ~effects:[ E.writes E.Socket_stream ]
      (fun st -> st.sent <- true) ]

let race_compromised st =
  match st.outcome with
  | Some o when Outcome.is_compromised o -> Some o
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* The Table-2 FSM model.                                              *)

let scenario ~request = Pfsm.Env.add_str "request.data" request Pfsm.Env.empty

let benign_scenario = scenario ~request:"GET /index.html"

let model t =
  let size_spec =
    P.Cmp (P.Le, P.Length P.Self, P.Lit (Pfsm.Value.Int buffer_size))
  in
  let pfsm1 =
    Pfsm.Primitive.make ~name:"pFSM1" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"copy the request into the 200-byte log buffer"
      ~spec:size_spec
      ~impl:(if t.config.length_check then size_spec else P.True)
  in
  let dist = distance_to_ret t in
  let copy_effect env =
    let len = String.length (Pfsm.Env.get_str "request.data" env) in
    Pfsm.Env.add_bool "return.unchanged" (len < dist) env
  in
  let op1 =
    Pfsm.Operation.make ~name:"Log the request"
      ~object_name:"the request string"
      ~effect_label:"the saved return address may now point into the buffer"
      ~effect_:copy_effect
      [ Pfsm.Operation.stage ~action_label:"vsprintf into buf" pfsm1 ]
  in
  let ret_spec = P.Env_flag "return.unchanged" in
  let pfsm2 =
    Pfsm.Primitive.make ~name:"pFSM2" ~kind:Pfsm.Taxonomy.Reference_consistency_check
      ~activity:"return from Log() to the parent function"
      ~spec:ret_spec
      ~impl:
        (if t.config.protection = Machine.Stack.No_protection then P.True else ret_spec)
  in
  let ret_effect env =
    Pfsm.Env.add_bool "mcode_executed"
      (not (Pfsm.Env.flag "return.unchanged" env))
      env
  in
  let op2 =
    Pfsm.Operation.make ~name:"Return from Log"
      ~object_name:"the saved return address"
      ~effect_label:"execute the code the return address refers to"
      ~effect_:ret_effect
      [ Pfsm.Operation.stage ~action_label:"ret" pfsm2 ]
  in
  Pfsm.Model.make ~name:"GHTTPD Log() Function Buffer Overflow" ~bugtraq_id:5960
    ~description:
      "An unbounded copy of the request line into a 200-byte stack buffer overwrites \
       the saved return address of Log()."
    [ Pfsm.Model.bind
        ~input:(fun env -> Pfsm.Env.get "request.data" env)
        ~input_label:"the request line" op1;
      Pfsm.Model.bind
        ~input:(fun _ -> Pfsm.Value.Unit)
        ~input_label:"the saved return address" op2 ]
