type result = {
  output : string;
  chars_written : int;
  writes : (Machine.Addr.t * int) list;
}

let output_cap = 4096

type state = {
  buf : Buffer.t;
  mutable count : int;
  mutable cursor : Machine.Addr.t;
  mutable writes : (Machine.Addr.t * int) list;
}

let emit st s =
  st.count <- st.count + String.length s;
  if Buffer.length st.buf < output_cap then
    Buffer.add_string st.buf (String.sub s 0 (min (String.length s) (output_cap - Buffer.length st.buf)))

(* Emit [n] copies of a pad character without materialising huge
   strings: only the visible prefix is buffered, the count is exact. *)
let emit_pad st n =
  if n > 0 then begin
    st.count <- st.count + n;
    let visible = max 0 (min n (output_cap - Buffer.length st.buf)) in
    if visible > 0 then Buffer.add_string st.buf (String.make visible ' ')
  end

let pop mem st =
  let v = Machine.Memory.read_i32 mem st.cursor in
  st.cursor <- st.cursor + 4;
  v

let pad_then st ~width rendered =
  emit_pad st (width - String.length rendered);
  emit st rendered

let interpret mem ~fmt ~arg_cursor =
  let st = { buf = Buffer.create 256; count = 0; cursor = arg_cursor; writes = [] } in
  let n = String.length fmt in
  let rec scan i =
    if i >= n then ()
    else if fmt.[i] = '%' && i + 1 < n then begin
      (* Parse an optional decimal width. *)
      let rec width j acc =
        if j < n && fmt.[j] >= '0' && fmt.[j] <= '9' then
          width (j + 1) ((acc * 10) + Char.code fmt.[j] - Char.code '0')
        else (j, acc)
      in
      let j, w = width (i + 1) 0 in
      if j >= n then emit st "%"
      else if j + 1 < n && fmt.[j] = 'h' && fmt.[j + 1] = 'n' then begin
        (* %hn: 16-bit write -- the primitive real exploits used in
           pairs to compose a full 32-bit value without huge pads. *)
        let addr = pop mem st in
        let v = st.count land 0xffff in
        Machine.Memory.write_u8 mem addr (v land 0xff);
        Machine.Memory.write_u8 mem (addr + 1) ((v lsr 8) land 0xff);
        st.writes <- (addr, v) :: st.writes;
        scan (j + 2)
      end
      else begin
        (match fmt.[j] with
         | '%' -> emit st "%"
         | 'd' -> pad_then st ~width:w (string_of_int (pop mem st))
         | 'u' ->
             let v = pop mem st in
             let v = if v < 0 then v + 0x1_0000_0000 else v in
             pad_then st ~width:w (string_of_int v)
         | 'x' -> pad_then st ~width:w (Printf.sprintf "%x" (pop mem st land 0xffff_ffff))
         | 'X' -> pad_then st ~width:w (Printf.sprintf "%X" (pop mem st land 0xffff_ffff))
         | 'c' ->
             let v = pop mem st in
             pad_then st ~width:w (String.make 1 (Char.chr (v land 0xff)))
         | 's' ->
             let addr = pop mem st in
             pad_then st ~width:w (Machine.Memory.read_cstring mem addr)
         | 'n' ->
             let addr = pop mem st in
             Machine.Memory.write_i32 mem addr st.count;
             st.writes <- (addr, st.count) :: st.writes
         | c ->
             (* Unknown conversion: print it literally, as old libcs did. *)
             emit st (Printf.sprintf "%%%c" c));
        scan (j + 1)
      end
    end
    else begin
      emit st (String.make 1 fmt.[i]);
      scan (i + 1)
    end
  in
  scan 0;
  { output = Buffer.contents st.buf; chars_written = st.count; writes = List.rev st.writes }
