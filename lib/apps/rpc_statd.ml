module P = Pfsm.Predicate

type config = {
  format_check : bool;
  protection : Machine.Stack.protection;
}

let vulnerable = { format_check = false; protection = Machine.Stack.No_protection }

type t = {
  proc : Machine.Process.t;
  config : config;
}

let fmtbuf_size = 1024

let setup ?(config = vulnerable) ?aslr_seed () =
  let proc = Machine.Process.create ~stack_protection:config.protection ?aslr_seed () in
  Machine.Process.register_function proc "statd_main";
  Machine.Process.register_function proc "svc_run";
  { proc; config }

let proc t = t.proc

let push_frames t =
  let stack = Machine.Process.stack t.proc in
  Machine.Stack.push_frame stack ~func:"statd_main"
    ~ret_addr:(Machine.Process.code_addr t.proc "svc_run")
    ~locals:[ ("request", 128) ];
  Machine.Stack.push_frame stack ~func:"syslog"
    ~ret_addr:(Machine.Process.code_addr t.proc "statd_main")
    ~locals:[ ("fmtbuf", fmtbuf_size) ]

let pop_all t =
  let stack = Machine.Process.stack t.proc in
  let status = Machine.Stack.pop_frame stack in
  ignore (Machine.Stack.pop_frame stack);
  status

let expected_layout t =
  let stack = Machine.Process.stack t.proc in
  push_frames t;
  let fmtbuf = Machine.Stack.local_addr stack "fmtbuf" in
  let ret_slot = Machine.Stack.ret_slot stack in
  ignore (pop_all t);
  (fmtbuf, ret_slot)

let expected_fmtbuf_addr t = fst (expected_layout t)

let expected_ret_slot t = snd (expected_layout t)

(* syslog(LOG_ERR, buf): the buffer IS the format string and the
   varargs cursor points right back into the stack at the buffer. *)
let run_syslog t ~filename =
  push_frames t;
  let mem = Machine.Process.mem t.proc in
  let stack = Machine.Process.stack t.proc in
  let fmtbuf = Machine.Stack.local_addr stack "fmtbuf" in
  Machine.Cstring.strncpy mem ~dst:fmtbuf filename ~n:(fmtbuf_size - 1);
  Machine.Memory.write_u8 mem (fmtbuf + min (String.length filename) (fmtbuf_size - 1)) 0;
  Machine.Process.mark_shellcode t.proc ~addr:fmtbuf
    ~len:(min (String.length filename) fmtbuf_size) ~label:"MCODE";
  let fmt = Machine.Memory.read_cstring mem fmtbuf in
  match Format_interp.interpret mem ~fmt ~arg_cursor:fmtbuf with
  | exception Machine.Memory.Fault { addr; _ } ->
      ignore (pop_all t);
      Outcome.Crash (Printf.sprintf "segfault during %%n write at 0x%08x" addr)
  | _ when
      t.config.protection = Machine.Stack.Split_stack
      && not (Machine.Stack.ret_addr_intact stack) ->
      ignore (pop_all t);
      Outcome.Protection_triggered "split stack ignored the corrupted return address"
  | result -> (
      match pop_all t with
      | Machine.Stack.Smashed_canary _ ->
          Outcome.Protection_triggered "StackGuard canary smashed"
      | Machine.Stack.Returned addr -> (
          match Machine.Process.classify_jump t.proc addr with
          | Machine.Process.Shellcode label -> Outcome.Code_execution label
          | Machine.Process.Wild a ->
              Outcome.Crash (Printf.sprintf "syslog returned to 0x%08x" a)
          | Machine.Process.Legit name ->
              if result.Format_interp.writes <> [] then
                let addr, value = List.hd result.Format_interp.writes in
                Outcome.Arbitrary_write { addr; value }
              else if Pfsm.Strcodec.contains_format_directive fmt then
                Outcome.Info_leak
                  (Printf.sprintf "stack words leaked through the log: %s"
                     result.Format_interp.output)
              else Outcome.Benign (Printf.sprintf "logged; returned to %s" name)))

let notify t ~filename =
  Outcome.guard @@ fun () ->
  if t.config.format_check && Pfsm.Strcodec.contains_format_directive filename then
    Outcome.Refused "filename contains printf directives"
  else run_syslog t ~filename

(* ------------------------------------------------------------------ *)
(* Step-level system: one SM_NOTIFY round as scheduler steps.  All    *)
(* effects live on the socket stream and named memory objects — no    *)
(* filesystem attr reads, so the TOCTTOU detector must stay silent.   *)

module Sched = Osmodel.Scheduler
module E = Osmodel.Effect

type race_state = {
  srv : t;
  sock : Osmodel.Socket.t;
  mutable sent : bool;
  mutable request : string option;
  mutable outcome : Outcome.t option;
}

let race_payload = "/var/statmon/sm/client07"

let race_fresh () =
  { srv = setup ();
    sock = Osmodel.Socket.of_string race_payload;
    sent = false; request = None; outcome = None }

let server_steps =
  [ Sched.step_e "statd: recv SM_NOTIFY"
      ~effects:[ E.reads E.Socket_stream; E.writes (E.Mem "statd.request") ]
      (fun st ->
        if st.sent then
          st.request <- Some (Osmodel.Socket.recv st.sock 1024));
    Sched.step_e "statd: syslog(filename)"
      ~effects:[ E.reads (E.Mem "statd.request"); E.writes (E.Mem "statd.fmtbuf") ]
      (fun st ->
        match st.request with
        | Some filename -> st.outcome <- Some (notify st.srv ~filename)
        | None -> ()) ]

let client_steps =
  [ Sched.step_e "client: send SM_NOTIFY"
      ~effects:[ E.writes E.Socket_stream ]
      (fun st -> st.sent <- true) ]

let race_compromised st =
  match st.outcome with
  | Some o when Outcome.is_compromised o -> Some o
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* The Table-2 FSM model.                                              *)

let scenario ~filename = Pfsm.Env.add_str "request.filename" filename Pfsm.Env.empty

let benign_scenario = scenario ~filename:"/var/statmon/sm/client07"

let model t =
  let format_spec = P.Is_format_free P.Self in
  let pfsm1 =
    Pfsm.Primitive.make ~name:"pFSM1" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"pass the client filename to syslog as the format string"
      ~spec:format_spec
      ~impl:(if t.config.format_check then format_spec else P.True)
  in
  let log_effect env =
    let filename = Pfsm.Env.get_str "request.filename" env in
    let has_percent_n =
      List.mem "%n" (Pfsm.Strcodec.format_directives filename)
    in
    Pfsm.Env.add_bool "return.unchanged" (not has_percent_n) env
  in
  let op1 =
    Pfsm.Operation.make ~name:"Log the notification filename"
      ~object_name:"the client-supplied filename"
      ~effect_label:"%n may have rewritten the saved return address"
      ~effect_:log_effect
      [ Pfsm.Operation.stage ~action_label:"syslog(LOG_ERR, filename)" pfsm1 ]
  in
  let ret_spec = P.Env_flag "return.unchanged" in
  let pfsm2 =
    Pfsm.Primitive.make ~name:"pFSM2" ~kind:Pfsm.Taxonomy.Reference_consistency_check
      ~activity:"return from syslog to the parent function"
      ~spec:ret_spec
      ~impl:
        (if t.config.protection = Machine.Stack.Split_stack then ret_spec else P.True)
  in
  let ret_effect env =
    Pfsm.Env.add_bool "mcode_executed"
      (not (Pfsm.Env.flag "return.unchanged" env))
      env
  in
  let op2 =
    Pfsm.Operation.make ~name:"Return from syslog"
      ~object_name:"the saved return address"
      ~effect_label:"execute the code the return address refers to"
      ~effect_:ret_effect
      [ Pfsm.Operation.stage ~action_label:"ret" pfsm2 ]
  in
  Pfsm.Model.make ~name:"rpc.statd Remote Format String Vulnerability" ~bugtraq_id:1480
    ~description:
      "statd passes a client-controlled filename to syslog as the format string; %n \
       turns the call into an arbitrary write onto the saved return address."
    [ Pfsm.Model.bind
        ~input:(fun env -> Pfsm.Env.get "request.filename" env)
        ~input_label:"the SM_NOTIFY filename" op1;
      Pfsm.Model.bind
        ~input:(fun _ -> Pfsm.Value.Unit)
        ~input_label:"the saved return address" op2 ]
