(** GHTTPD Log() stack buffer overflow — Bugtraq #5960, analysed in
    the paper's companion report [21] and classified in Table 2.

    [Log()] copies the request line into a 200-byte stack buffer
    with no bound; an oversized request overwrites the saved return
    address, and the function "returns" into the attacker's bytes
    sitting in that very buffer. *)

type config = {
  length_check : bool;                 (** pFSM1's fix: size <= 200 *)
  protection : Machine.Stack.protection; (** StackGuard / split-stack *)
}

val vulnerable : config

type t

val setup : ?config:config -> ?aslr_seed:int -> unit -> t

val proc : t -> Machine.Process.t

val buffer_size : int
(** 200 bytes. *)

val expected_buf_addr : t -> Machine.Addr.t
(** Where [Log]'s buffer will sit (deterministic stack layout) —
    what the exploit points the return address at. *)

val distance_to_ret : t -> int
(** Bytes from the buffer to the saved return address. *)

val serve : t -> request:string -> Outcome.t
(** Handle one request: push the [Log] frame, [strcpy] the request
    into the buffer, return. *)

(** {2 Step-level system}

    One request round decomposed into scheduler steps (client send,
    server recv, [Log]).  Socket and memory effects only — a negative
    instance for the TOCTTOU detector. *)

type race_state

val race_fresh : unit -> race_state

val server_steps : race_state Osmodel.Scheduler.step list

val client_steps : race_state Osmodel.Scheduler.step list

val race_compromised : race_state -> Outcome.t option

val model : t -> Pfsm.Model.t
(** Per [21]/Table 2: pFSM1 size check, pFSM2 return-address
    consistency.  Scenario key: ["request.data"]. *)

val scenario : request:string -> Pfsm.Env.t

val benign_scenario : Pfsm.Env.t
