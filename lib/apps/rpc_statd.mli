(** rpc.statd remote format string vulnerability — Bugtraq #1480,
    analysed in the paper's companion report [21], Table 2.

    statd passes a client-supplied filename to [syslog] {e as the
    format string}.  [%n] directives turn the logging call into an
    arbitrary 4-byte write — typically onto the saved return
    address, redirecting execution into the attacker's bytes that
    sit in the very same buffer.

    Note the StackGuard canary does {e not} stop this exploit: the
    [%n] write lands surgically on the return slot without touching
    the canary.  Only the input check (pFSM1) or a split-stack /
    return-address consistency check (pFSM2) foils it — exactly the
    paper's point about reference-consistency protections. *)

type config = {
  format_check : bool;                   (** pFSM1's fix: reject %-directives *)
  protection : Machine.Stack.protection;
}

val vulnerable : config

type t

val setup : ?config:config -> ?aslr_seed:int -> unit -> t

val proc : t -> Machine.Process.t

val expected_fmtbuf_addr : t -> Machine.Addr.t

val expected_ret_slot : t -> Machine.Addr.t

val notify : t -> filename:string -> Outcome.t
(** The SM_NOTIFY handler: copy the filename into a stack buffer and
    [syslog] it (i.e. run the format interpreter with the varargs
    cursor pointing into that buffer). *)

(** {2 Step-level system}

    One SM_NOTIFY round decomposed into scheduler steps (client send,
    server recv, syslog).  Effects live on the socket stream and named
    memory objects only — a negative instance for the TOCTTOU
    detector. *)

type race_state

val race_fresh : unit -> race_state

val server_steps : race_state Osmodel.Scheduler.step list

val client_steps : race_state Osmodel.Scheduler.step list

val race_compromised : race_state -> Outcome.t option

val model : t -> Pfsm.Model.t
(** Scenario key: ["request.filename"]. *)

val scenario : filename:string -> Pfsm.Env.t

val benign_scenario : Pfsm.Env.t
