module P = Pfsm.Predicate

type version = V0_5 | V0_5_1

type config = {
  version : version;
  loop_fixed : bool;
  safe_unlink : bool;
}

let vulnerable_v0_5 = { version = V0_5; loop_fixed = false; safe_unlink = false }

let v0_5_1 = { version = V0_5_1; loop_fixed = false; safe_unlink = false }

let fully_fixed = { version = V0_5_1; loop_fixed = true; safe_unlink = false }

type t = {
  proc : Machine.Process.t;
  config : config;
  mcode : Machine.Addr.t;
  keep_buf : Machine.Addr.t;    (* a long-lived buffer the server frees later *)
  work_region : Machine.Addr.t; (* freed chunk PostData will be carved from *)
}

let setup ?(config = vulnerable_v0_5) ?aslr_seed () =
  let proc = Machine.Process.create ~safe_unlink:config.safe_unlink ?aslr_seed () in
  Machine.Process.register_function proc "free";
  Machine.Process.register_function proc "main";
  let mcode = Machine.Process.alloc_global proc "mcode" 64 in
  Machine.Process.mark_shellcode proc ~addr:mcode ~len:64 ~label:"Mcode";
  let heap = Machine.Process.heap proc in
  let keep_buf =
    match Machine.Heap.malloc heap 512 with
    | Some a -> a
    | None -> Fault.Condition.fail (Fault.Condition.Heap_exhausted { requested = 512 })
  in
  let work_region =
    match Machine.Heap.malloc heap 4096 with
    | Some a -> a
    | None -> Fault.Condition.fail (Fault.Condition.Heap_exhausted { requested = 4096 })
  in
  Machine.Heap.free heap work_region;
  { proc; config; mcode; keep_buf; work_region }

let proc t = t.proc

let config t = t.config

let mcode_addr t = t.mcode

let free_slot t = Machine.Got.slot_addr (Machine.Process.got t.proc) "free"

let usable_for ~content_len =
  Machine.Heap.request_size (content_len + 1024) - 8

let predicted_postdata t = t.work_region

(* free() as the program sees it: an indirect call through the GOT.
   A corrupted slot means the "call" lands in attacker code instead
   of libc's free. *)
let libc_free t user =
  match Machine.Process.call_via_got t.proc "free" with
  | Machine.Process.Shellcode label -> Error (Outcome.Code_execution label)
  | Machine.Process.Wild addr ->
      Error (Outcome.Crash (Printf.sprintf "free call jumped to 0x%08x" addr))
  | Machine.Process.Legit _ -> (
      match Machine.Heap.free (Machine.Process.heap t.proc) user with
      | () -> Ok ()
      | exception Machine.Heap.Corruption_detected { chunk } ->
          Error
            (Outcome.Protection_triggered
               (Printf.sprintf "safe unlink rejected corrupted chunk 0x%08x" chunk))
      | exception Machine.Memory.Fault { addr; _ } ->
          (* Garbage fd/bk from an uncontrolled overflow: free()
             dereferences them and the process segfaults. *)
          Error (Outcome.Crash (Printf.sprintf "free() faulted at 0x%08x" addr)))

(* Figure 4b's ReadPOSTData loop, bug included. *)
let read_post_data t ~postdata ~content_len ~body =
  let mem = Machine.Process.mem t.proc in
  let sock = Osmodel.Socket.of_string body in
  let rec loop p x =
    let s = Osmodel.Socket.recv sock 1024 in
    let rc = String.length s in
    if rc = 0 then x   (* peer closed; a real server would stall here *)
    else begin
      Machine.Memory.write_string mem p s;
      let p = p + rc and x = x + rc in
      let continue =
        if t.config.loop_fixed then rc = 1024 && x < content_len
        else rc = 1024 || x < content_len
      in
      if continue then loop p x else x
    end
  in
  match loop postdata 0 with
  | x -> Ok x
  | exception Machine.Memory.Fault { addr; _ } ->
      Error (Outcome.Crash (Printf.sprintf "segfault writing heap at 0x%08x" addr))

let handle_post t ~content_len ~body =
  Outcome.guard @@ fun () ->
  if t.config.version = V0_5_1 && content_len < 0 then
    Outcome.Refused "negative Content-Length rejected (0.5.1 check)"
  else
    let heap = Machine.Process.heap t.proc in
    match Machine.Heap.calloc heap ~count:(content_len + 1024) ~size:1 with
    | None -> Outcome.Crash "calloc(contentLen+1024) returned NULL"
    | Some postdata -> (
        match read_post_data t ~postdata ~content_len ~body with
        | Error outcome -> outcome
        | Ok received when
            t.config.loop_fixed && received < String.length body ->
            (* The corrected loop stopped at capacity; the excess
               bytes were never accepted. *)
            Outcome.Refused
              (Printf.sprintf "body truncated: read %d of %d bytes" received
                 (String.length body))
        | Ok received -> (
            let usable = Machine.Heap.usable_size heap ~user:postdata in
            let overflowed = received > usable in
            match libc_free t postdata with
            | Error outcome -> outcome
            | Ok () -> (
                (* The server keeps running and eventually frees
                   another buffer -- the call the exploit hijacks. *)
                match libc_free t t.keep_buf with
                | Error outcome -> outcome
                | Ok () ->
                    let got = Machine.Process.got t.proc in
                    if not (Machine.Got.unchanged got "free") then
                      Outcome.Arbitrary_write
                        { addr = free_slot t;
                          value = Machine.Got.resolve got "free" }
                    else if overflowed then
                      Outcome.Memory_corruption
                        (Printf.sprintf "wrote %d bytes into a %d-byte PostData"
                           received usable)
                    else Outcome.Benign (Printf.sprintf "%d-byte POST handled" received))))

(* ------------------------------------------------------------------ *)
(* The Figure-4 FSM model.                                             *)

let scenario ~content_len ~body =
  Pfsm.Env.empty
  |> Pfsm.Env.add_int "request.contentLen" content_len
  |> Pfsm.Env.add_str "request.body" body
  |> Pfsm.Env.add_bool "chunkB.links.unchanged" true
  |> Pfsm.Env.add_bool "got.free.unchanged" true

let benign_scenario = scenario ~content_len:64 ~body:(String.make 64 'a')

let model t =
  let nonneg = P.Cmp (P.Ge, P.Self, P.Lit (Pfsm.Value.Int 0)) in
  let pfsm1 =
    Pfsm.Primitive.make ~name:"pFSM1" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"read contentLen from the request; calloc(contentLen+1024)"
      ~spec:nonneg
      ~impl:(if t.config.version = V0_5_1 then nonneg else P.True)
  in
  let alloc_action env obj =
    let content_len = Pfsm.Value.as_int obj in
    let env = Pfsm.Env.add_int "buffer.size" (usable_for ~content_len) env in
    (env, Pfsm.Env.get "request.body" env)
  in
  let len_spec = P.Cmp (P.Le, P.Length P.Self, P.Env_val "buffer.size") in
  let pfsm2 =
    Pfsm.Primitive.make ~name:"pFSM2" ~kind:Pfsm.Taxonomy.Content_attribute_check
      ~activity:"recv the request body into PostData"
      ~spec:len_spec
      ~impl:(if t.config.loop_fixed then len_spec else P.True)
  in
  let copy_effect env =
    let body = Pfsm.Env.get_str "request.body" env in
    let size = Pfsm.Env.get_int "buffer.size" env in
    Pfsm.Env.add_bool "chunkB.links.unchanged" (String.length body <= size) env
  in
  let op1 =
    Pfsm.Operation.make ~name:"Read postdata from socket to PostData"
      ~object_name:"contentLen and input"
      ~effect_label:"free-chunk B's fd/bk may now be attacker-controlled"
      ~effect_:copy_effect
      [ Pfsm.Operation.stage ~action:alloc_action
          ~action_label:"PostData = calloc(contentLen+1024); switch object to input"
          pfsm1;
        Pfsm.Operation.stage ~action_label:"copy input into PostData" pfsm2 ]
  in
  let links_spec = P.Env_flag "chunkB.links.unchanged" in
  let pfsm3 =
    Pfsm.Primitive.make ~name:"pFSM3" ~kind:Pfsm.Taxonomy.Reference_consistency_check
      ~activity:"free(PostData): unlink the following free chunk B"
      ~spec:links_spec
      ~impl:(if t.config.safe_unlink then links_spec else P.True)
  in
  let unlink_effect env =
    let intact = Pfsm.Env.flag "chunkB.links.unchanged" env in
    Pfsm.Env.add_bool "got.free.unchanged" intact env
  in
  let op2 =
    Pfsm.Operation.make ~name:"Allocate and free the buffer PostData"
      ~object_name:"free chunk B (fd, bk)"
      ~effect_label:"B->fd->bk = B->bk executes: GOT entry of free may point to Mcode"
      ~effect_:unlink_effect
      [ Pfsm.Operation.stage ~action_label:"execute B->fd->bk = B->bk" pfsm3 ]
  in
  let got_spec = P.Env_flag "got.free.unchanged" in
  let pfsm4 =
    Pfsm.Primitive.make ~name:"pFSM4" ~kind:Pfsm.Taxonomy.Reference_consistency_check
      ~activity:"execute addr_free when free is called"
      ~spec:got_spec ~impl:P.True
  in
  let exec_effect env =
    Pfsm.Env.add_bool "mcode_executed" (not (Pfsm.Env.flag "got.free.unchanged" env)) env
  in
  let op3 =
    Pfsm.Operation.make ~name:"Manipulate the GOT entry of function free"
      ~object_name:"addr_free"
      ~effect_label:"Mcode is executed" ~effect_:exec_effect
      [ Pfsm.Operation.stage ~action_label:"jump to *addr_free" pfsm4 ]
  in
  Pfsm.Model.make ~name:"NULL HTTPD Heap Overflow"
    ~bugtraq_id:(if t.config.version = V0_5 then 5774 else 6255)
    ~description:
      "ReadPOSTData copies a socket body into calloc(contentLen+1024); a negative \
       contentLen (#5774) or the ||-for-&& loop bug (#6255) overflows PostData into \
       the following free chunk, whose unlink at free() rewrites the GOT entry of \
       free() to attacker code."
    [ Pfsm.Model.bind
        ~input:(fun env -> Pfsm.Env.get "request.contentLen" env)
        ~input_label:"contentLen from the HTTP request" op1;
      Pfsm.Model.bind
        ~input:(fun _ -> Pfsm.Value.Unit)
        ~input_label:"free chunk B adjacent to PostData" op2;
      Pfsm.Model.bind
        ~input:(fun _ -> Pfsm.Value.Unit)
        ~input_label:"addr_free (GOT entry of free)" op3 ]
