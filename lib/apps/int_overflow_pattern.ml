module P = Pfsm.Predicate

type activity = Get_input | Index_array | Execute_reference

let activities = [ Get_input; Index_array; Execute_reference ]

let activity_description = function
  | Get_input -> "get an input integer"
  | Index_array -> "use the integer as the index to an array"
  | Execute_reference -> "execute a code referred by a function pointer or a return address"

let category_assigned = function
  | Get_input -> Vulndb.Category.Input_validation_error
  | Index_array -> Vulndb.Category.Boundary_condition_error
  | Execute_reference -> Vulndb.Category.Access_validation_error

let bugtraq_example = function
  | Get_input -> 3163
  | Index_array -> 5493
  | Execute_reference -> 3958

let array_length = 100

let pfsm_name = function
  | Get_input -> "pFSM-get"
  | Index_array -> "pFSM-index"
  | Execute_reference -> "pFSM-exec"

let model () =
  let get =
    Pfsm.Checks.pfsm ~name:(pfsm_name Get_input) ~check:"representable_int32"
      ~activity:(activity_description Get_input)
      Pfsm.Checks.representable_int32
  in
  let convert env obj =
    let x = Pfsm.Strcodec.atoi32 (Pfsm.Value.as_str obj) in
    (Pfsm.Env.add_int "x" x env, Pfsm.Value.Int x)
  in
  let index =
    Pfsm.Checks.pfsm ~name:(pfsm_name Index_array) ~check:"index_in_bounds"
      ~activity:(activity_description Index_array)
      ~impl:(P.Cmp (P.Le, P.Self, P.Lit (Pfsm.Value.Int (array_length - 1))))
      (Pfsm.Checks.index_in_bounds ~low:0 ~high:(array_length - 1))
  in
  let write_effect env =
    Pfsm.Env.add_bool "fnptr.unchanged" (Pfsm.Env.get_int "x" env >= 0) env
  in
  let op1 =
    Pfsm.Operation.make ~name:"Manipulate the input integer"
      ~object_name:"the input integer"
      ~effect_label:"table[x] write may corrupt an adjacent function pointer"
      ~effect_:write_effect
      [ Pfsm.Operation.stage ~action:convert ~action_label:"convert string to int" get;
        Pfsm.Operation.stage ~action_label:"table[x] = value" index ]
  in
  let exec =
    Pfsm.Checks.pfsm ~name:(pfsm_name Execute_reference) ~check:"reference_unchanged"
      ~activity:(activity_description Execute_reference)
      (Pfsm.Checks.reference_unchanged ~flag:"fnptr.unchanged")
  in
  let exec_effect env =
    Pfsm.Env.add_bool "attacker_code_executed"
      (not (Pfsm.Env.flag "fnptr.unchanged" env))
      env
  in
  let op2 =
    Pfsm.Operation.make ~name:"Manipulate the function pointer"
      ~object_name:"the function pointer"
      ~effect_label:"control transfers to the corrupted target"
      ~effect_:exec_effect
      [ Pfsm.Operation.stage ~action_label:"call through the pointer" exec ]
  in
  Pfsm.Model.make ~name:"Generic signed integer overflow exploitation pattern (Table 1)"
    ~description:
      "One mechanism, three elementary activities: the classification ambiguity of \
       Table 1 formalised as a single three-pFSM chain."
    [ Pfsm.Model.bind
        ~input:(fun env -> Pfsm.Env.get "input.str" env)
        ~input_label:"the attacker's decimal string" op1;
      Pfsm.Model.bind ~input:(fun _ -> Pfsm.Value.Unit)
        ~input_label:"the function pointer" op2 ]

let scenario s = Pfsm.Env.add_str "input.str" s Pfsm.Env.empty

let exploit_scenario = scenario "4294966296"   (* wraps to -1000 *)

let benign_scenario = scenario "42"

let ambiguity_rows () =
  let trace = Pfsm.Model.run (model ()) ~env:exploit_scenario in
  let hidden_at name =
    List.exists
      (fun s ->
         s.Pfsm.Trace.pfsm.Pfsm.Primitive.name = name && s.Pfsm.Trace.verdict.Pfsm.Primitive.hidden)
      trace.Pfsm.Trace.steps
  in
  List.map
    (fun a -> (a, bugtraq_example a, category_assigned a, hidden_at (pfsm_name a)))
    activities
