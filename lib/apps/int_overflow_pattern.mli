(** The generic signed-integer-overflow exploitation pattern behind
    Table 1.

    Bugtraq filed the {e same} mechanism under three categories
    because analysts pinned it to three different elementary
    activities: getting the input integer (#3163, input validation),
    using it as an array index (#5493, boundary condition), and
    executing code through the corrupted pointer (#3958, access
    validation).  This module builds the three-activity chain as one
    FSM model — running an exploit through it drives a hidden path at
    {e every} activity, which is the paper's Observation 1: each
    activity is an independent classification (and protection)
    point. *)

type activity = Get_input | Index_array | Execute_reference

val activities : activity list

val activity_description : activity -> string

val category_assigned : activity -> Vulndb.Category.t
(** The Bugtraq category an analyst pinning the flaw at this activity
    assigns. *)

val bugtraq_example : activity -> int
(** The Table-1 report filed at this activity (#3163/#5493/#3958). *)

val array_length : int
(** 100 — the canonical table size. *)

val model : unit -> Pfsm.Model.t
(** The generic chain, assembled from {!Pfsm.Checks}. Scenario key:
    ["input.str"]. *)

val exploit_scenario : Pfsm.Env.t
(** A decimal beyond 2{^31} that wraps negative. *)

val benign_scenario : Pfsm.Env.t

val ambiguity_rows : unit -> (activity * int * Vulndb.Category.t * bool) list
(** For each activity: its Table-1 report, its category, and whether
    the exploit scenario drives a hidden path there (always [true] on
    the vulnerable chain — the formal content of Table 1). *)
